/**
 * @file
 * fgpsim — command-line driver mirroring the paper's toolchain (§3.1):
 * the translating loader, the enlargement-file creator and the run-time
 * simulator as one multi-command binary.
 *
 *   fgpsim asm     <src>                       assemble + list blocks
 *   fgpsim run     <src> [--stdin FILE]        functional (VM) execution
 *   fgpsim profile <src> [--out FILE]          write a statistics file
 *   fgpsim profile <src> --config CFG [--interval N] [--json]
 *                  [--chrome FILE] [--top N]    interval profiler: per-window
 *                                              IPC/stall streams plus the
 *                                              executed schedule's dynamic
 *                                              critical path (any of these
 *                                              flags selects this mode;
 *                                              without them the legacy
 *                                              branch-arc statistics file
 *                                              above is produced)
 *   fgpsim bbe     <src> --profile FILE [--out FILE]
 *                  [--max-chain N] [--ratio R] [--min-count N]
 *                                              create an enlargement file
 *   fgpsim sim     <src> --config dyn4/8A/enlarged
 *                  [--plan FILE] [--ras N] [--window N] [--stdin FILE]
 *                  [--json] [--events FILE] [--chrome FILE]
 *                                              cycle-level simulation
 *   fgpsim trace   <src> [--config ...] [--stdin FILE] [--out FILE]
 *                                              per-cycle pipeline trace
 *   fgpsim report  <src> [--config ...] [--top N] [--json]
 *                                              stall/per-block report
 *   fgpsim check   <src> [--config ...] [--plan FILE] [--json] [--strict]
 *                                              static verification of the
 *                                              single/enlarged/translated
 *                                              images (docs/VERIFIER.md)
 *   fgpsim analyze <src> [--config ...] [--plan FILE] [--top N]
 *                  [--json] [--strict]
 *                                              static ILP bounds + workload
 *                                              lint, no simulation
 *                                              (docs/ANALYZER.md)
 *   fgpsim compare <A.jsonl> <B.jsonl> [--tolerance P%]
 *                  [--wall-tolerance P%] [--json]
 *                                              diff two fgpsim-run-v1
 *                                              manifests; nonzero exit on
 *                                              an IPC or wall-time
 *                                              regression (CI perf gate)
 *   fgpsim history <history.jsonl>             perf trajectory of an
 *                                              appended run-header history
 *                                              (BENCH_history.jsonl): git,
 *                                              host ns/sim-cycle, delta vs
 *                                              the previous run
 *
 * <src> is either the name of a built-in benchmark (sort, grep, diff,
 * cpp, compress — inputs are generated automatically) or a path to a
 * micro-assembly file. Built-in benchmarks profile on input set 1 and
 * run/simulate on input set 2, exactly like the paper's protocol.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/table.hh"
#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "ir/printer.hh"
#include "metrics/manifest.hh"
#include "obs/bus.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "obs/sinks.hh"
#include "analyze/analyze.hh"
#include "analyze/disambig.hh"
#include "analyze/lint.hh"
#include "masm/assembler.hh"
#include "profile/profile.hh"
#include "tld/translate.hh"
#include "verify/equiv.hh"
#include "verify/postpass.hh"
#include "verify/verify.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"
#include "vm/profile_io.hh"
#include "workloads/workloads.hh"

namespace fgp {
namespace {

struct Options
{
    std::string command;
    std::string source;
    std::vector<std::string> extra; ///< positionals after <src>
    std::map<std::string, std::string> flags;

    bool has(const std::string &name) const { return flags.count(name); }

    std::string
    get(const std::string &name, const std::string &fallback = "") const
    {
        const auto it = flags.find(name);
        return it == flags.end() ? fallback : it->second;
    }
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: fgpsim <command> <src> [flags]\n"
        "  commands: asm | run | profile | bbe | sim | trace | report |\n"
        "            check | analyze | compare | history\n"
        "  <src>: benchmark name (sort grep diff cpp compress) or .s file\n"
        "  common flags: --stdin FILE, --out FILE\n"
        "  bbe flags:    --profile FILE [--max-chain N] [--ratio R]\n"
        "                [--min-count N]\n"
        "  sim flags:    --config dyn4/8A/enlarged [--plan FILE]\n"
        "                [--ras N] [--window N] [--conservative]\n"
        "                [--json] [--events FILE] [--chrome FILE]\n"
        "  trace flags:  sim flags plus --out FILE (trace destination)\n"
        "  report flags: sim flags plus --top N (blocks in the table)\n"
        "  check flags:  [--config CFG] [--plan FILE] [--json] [--strict]\n"
        "  analyze flags:[--config CFG] [--plan FILE] [--top N] [--json]\n"
        "                [--strict] (exit 1 when lint finds anything)\n"
        "                [--mem] (memory-disambiguation table: per-block\n"
        "                alias classes ranked by may-alias density)\n"
        "  compare:      fgpsim compare A.jsonl B.jsonl\n"
        "                [--tolerance P%] [--wall-tolerance P%] [--json]\n"
        "                (fgpsim-run-v1 manifests; exit 1 on regression)\n"
        "  profile (interval mode, any of these flags selects it):\n"
        "                --config CFG [--interval CYCLES] [--json]\n"
        "                [--chrome FILE] [--top N] plus the sim flags;\n"
        "                --json emits fgpsim-profile-v1 JSONL\n"
        "  history:      fgpsim history BENCH_history.jsonl\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fgp_fatal("cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fgp_fatal("cannot write '", path, "'");
    out << text;
}

bool
isBenchmark(const std::string &name)
{
    const auto &names = workloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Resolve <src> into a program plus an OS preparer. */
struct Source
{
    Program program;
    std::optional<Workload> workload;

    void
    prepare(SimOS &os, InputSet set, const Options &opts) const
    {
        if (workload) {
            workload->prepareOs(os, set);
        } else if (opts.has("stdin")) {
            os.setStdin(readFile(opts.get("stdin")));
        }
    }
};

Source
resolveSource(const Options &opts)
{
    Source src;
    if (isBenchmark(opts.source)) {
        src.workload = makeWorkload(opts.source);
        src.program = src.workload->program();
    } else {
        src.program = assemble(readFile(opts.source), opts.source);
    }
    return src;
}

int
cmdAsm(const Options &opts)
{
    const Source src = resolveSource(opts);
    const CodeImage image = buildCfg(src.program);

    std::size_t mem_nodes = 0;
    std::size_t alu_nodes = 0;
    for (const Node &node : src.program.instrs) {
        if (node.isMem())
            ++mem_nodes;
        else if (!node.isControl())
            ++alu_nodes;
    }
    std::cout << "; " << src.program.instrs.size() << " nodes, "
              << image.blocks.size() << " basic blocks, "
              << src.program.data.size() << " data bytes\n"
              << "; static ALU:MEM ratio "
              << format("%.2f", mem_nodes ? static_cast<double>(alu_nodes) /
                                                static_cast<double>(mem_nodes)
                                          : 0.0)
              << "\n\n";
    printImage(image, std::cout);
    return 0;
}

int
cmdRun(const Options &opts)
{
    const Source src = resolveSource(opts);
    SimOS os;
    src.prepare(os, InputSet::Measure, opts);
    const RunResult r = interpret(src.program, os);
    std::cout << os.stdoutText();
    std::cerr << "exit " << r.exitCode << ", " << r.dynamicNodes
              << " nodes (" << r.memNodes << " mem, " << r.controlNodes
              << " control), " << r.dynamicBlocks << " dynamic blocks\n";
    return r.exitCode;
}

/**
 * Interval-profiling simulation: run <src> under the given machine
 * configuration with the engine's interval profiler attached and report
 * per-window IPC / stall-cause streams plus the executed schedule's
 * dynamic critical path. Selected from `fgpsim profile` by any of
 * --config/--interval/--json/--chrome/--top; the flagless form keeps
 * producing the legacy branch-arc statistics file.
 */
int
cmdProfileInterval(const Options &opts)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/single"));
    const int top = static_cast<int>(*parseInt(opts.get("top", "10")));

    CodeImage image = buildCfg(src.program);
    if (config.branch != BranchMode::Single) {
        EnlargePlan plan;
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(image, profile, {});
        }
        image = applyEnlargement(buildCfg(src.program), plan, nullptr);
    }

    EngineOptions eopts;
    eopts.config = config;
    if (opts.has("ras"))
        eopts.predictor.rasDepth =
            static_cast<int>(*parseInt(opts.get("ras")));
    if (opts.has("window"))
        eopts.windowOverride =
            static_cast<int>(*parseInt(opts.get("window")));
    if (opts.has("conservative"))
        eopts.conservativeLoads = true;

    std::vector<std::int32_t> trace;
    if (config.branch == BranchMode::Perfect) {
        SimOS os;
        src.prepare(os, InputSet::Measure, opts);
        AtomicRunOptions aopts;
        aopts.recordTrace = true;
        trace = runAtomic(image, os, aopts).blockTrace;
        eopts.perfectTrace = &trace;
    }

    CodeImage translated = image;
    translate(translated, config);

    // Static ceilings for the measured-vs-bound comparison.
    const analyze::ImageAnalysis analysis =
        analyze::analyzeImage(translated, config.memory.hitLatency);
    std::vector<double> bounds(translated.blocks.size(), 0.0);
    for (const analyze::BlockBounds &b : analysis.blocks)
        if (b.block >= 0 &&
            static_cast<std::size_t>(b.block) < bounds.size())
            bounds[static_cast<std::size_t>(b.block)] = b.packedBound;

    profile::IntervalProfiler profiler;
    if (opts.has("interval"))
        profiler.setWindowCycles(
            static_cast<std::uint64_t>(*parseInt(opts.get("interval"))));
    eopts.profile = &profiler;

    SimOS os;
    src.prepare(os, InputSet::Measure, opts);
    const EngineResult r = simulate(translated, os, eopts);

    const profile::CritPath cp = profile::extractCriticalPath(
        profiler.retiredLog(), r.cycles, translated.blocks.size());

    const auto &windows = profiler.windows();
    const std::uint64_t width =
        static_cast<std::uint64_t>(profiler.issueWidth());

    // Blocks ranked by critical-path residency.
    std::vector<std::size_t> ranked;
    for (std::size_t i = 0; i < cp.blockCycles.size(); ++i)
        if (cp.blockCycles[i])
            ranked.push_back(i);
    std::sort(ranked.begin(), ranked.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cp.blockCycles[a] != cp.blockCycles[b])
                      return cp.blockCycles[a] > cp.blockCycles[b];
                  return a < b;
              });
    const std::size_t rankedTotal = ranked.size();
    if (ranked.size() > static_cast<std::size_t>(std::max(top, 0)))
        ranked.resize(static_cast<std::size_t>(std::max(top, 0)));

    struct Cause
    {
        const char *name;
        std::uint64_t cycles;
    };
    const Cause causes[] = {
        {"fetch", cp.fetchCycles},     {"branch", cp.branchCycles},
        {"operand", cp.operandCycles}, {"memory", cp.memoryCycles},
        {"forward", cp.forwardCycles}, {"fu_busy", cp.fuBusyCycles},
        {"execute", cp.executeCycles}, {"retire", cp.retireCycles}};

    if (opts.has("chrome")) {
        std::ofstream chrome(opts.get("chrome"), std::ios::binary);
        if (!chrome)
            fgp_fatal("cannot write '", opts.get("chrome"), "'");
        obs::ChromeTraceSink sink(chrome);
        for (const profile::WindowSample &win : windows) {
            const double slots =
                static_cast<double>(win.cycles * width);
            sink.emitCounter(win.startCycle, "ipc", win.ipc());
            sink.emitCounter(win.startCycle, "ready_mean",
                             win.cycles
                                 ? static_cast<double>(win.readySum) /
                                       static_cast<double>(win.cycles)
                                 : 0.0);
            sink.emitCounter(win.startCycle, "live_max",
                             static_cast<double>(win.liveMax));
            const Cause slotCauses[] = {
                {"stall.fetch_redirect", win.stalls.fetchRedirectSlots},
                {"stall.fetch_idle", win.stalls.fetchIdleSlots},
                {"stall.window_full", win.stalls.windowFullSlots},
                {"stall.short_word", win.stalls.shortWordSlots},
                {"stall.operand_wait",
                 win.stalls.operandWaitNodeCycles},
                {"stall.memory_wait", win.stalls.memoryWaitNodeCycles},
                {"stall.fu_busy", win.stalls.fuBusyNodeCycles}};
            for (const Cause &c : slotCauses)
                sink.emitCounter(win.startCycle, c.name,
                                 slots > 0.0
                                     ? static_cast<double>(c.cycles) /
                                           slots
                                     : 0.0);
        }
        sink.onRunEnd();
    }

    if (opts.has("json")) {
        const auto line = [](metrics::JsonLineWriter &w) {
            std::cout << w.str() << "\n";
        };
        {
            metrics::JsonLineWriter w;
            w.field("schema", "fgpsim-profile-v1");
            w.field("kind", "profile");
            w.field("workload", opts.source);
            w.field("config", config.name());
            w.field("window_cycles", profiler.windowCycles());
            w.field("issue_width", width);
            w.field("cycles", r.cycles);
            w.field("retired_nodes", r.retiredNodes);
            w.field("nodes_per_cycle", r.nodesPerCycle());
            w.field("static_ipc_bound", analysis.staticIpcBound);
            w.field("crit_path_cycles", cp.pathCycles);
            w.field("crit_path_nodes", cp.pathNodes);
            w.field("crit_path_implied_ipc", cp.impliedIpc());
            w.field("windows",
                    static_cast<std::uint64_t>(windows.size()));
            line(w);
        }
        for (const profile::WindowSample &win : windows) {
            metrics::JsonLineWriter w;
            w.field("kind", "window");
            w.field("index", win.index);
            w.field("start_cycle", win.startCycle);
            w.field("cycles", win.cycles);
            w.field("ipc", win.ipc());
            w.field("issued_nodes", win.issuedNodes);
            w.field("retired_nodes", win.retiredNodes);
            w.field("executed_nodes", win.executedNodes);
            w.field("committed_blocks", win.committedBlocks);
            w.field("squashed_blocks", win.squashedBlocks);
            w.field("mispredicts", win.mispredicts);
            w.field("faults_fired", win.faultsFired);
            w.field("stall_fetch_redirect",
                    win.stalls.fetchRedirectSlots);
            w.field("stall_fetch_idle", win.stalls.fetchIdleSlots);
            w.field("stall_window_full", win.stalls.windowFullSlots);
            w.field("stall_short_word", win.stalls.shortWordSlots);
            w.field("stall_drain", win.stalls.drainSlots);
            w.field("stall_operand_wait",
                    win.stalls.operandWaitNodeCycles);
            w.field("stall_memory_wait",
                    win.stalls.memoryWaitNodeCycles);
            w.field("stall_serialize_wait",
                    win.stalls.serializeWaitNodeCycles);
            w.field("stall_fu_busy", win.stalls.fuBusyNodeCycles);
            w.field("ready_mean",
                    win.cycles ? static_cast<double>(win.readySum) /
                                     static_cast<double>(win.cycles)
                               : 0.0);
            w.field("ready_max", win.readyMax);
            w.field("live_max", win.liveMax);
            w.field("store_queue_max", win.storeQueueMax);
            w.field("write_buf_max", win.writeBufMax);
            line(w);
        }
        for (const profile::WindowSample &win : windows) {
            const auto &residency = profiler.residency();
            for (std::uint32_t i = 0; i < win.residencyCount; ++i) {
                const profile::ResidencyEntry &entry =
                    residency[win.residencyOffset + i];
                metrics::JsonLineWriter w;
                w.field("kind", "residency");
                w.field("window", win.index);
                w.field("block",
                        static_cast<std::uint64_t>(entry.block));
                w.field("retired_nodes", entry.retiredNodes);
                line(w);
            }
        }
        for (const Cause &c : causes) {
            metrics::JsonLineWriter w;
            w.field("kind", "critpath");
            w.field("cause", c.name);
            w.field("cycles", c.cycles);
            w.field("share", cp.pathCycles
                                 ? static_cast<double>(c.cycles) /
                                       static_cast<double>(cp.pathCycles)
                                 : 0.0);
            line(w);
        }
        for (std::size_t i : ranked) {
            metrics::JsonLineWriter w;
            w.field("kind", "critblock");
            w.field("block", static_cast<std::uint64_t>(i));
            w.field("entry_pc",
                    static_cast<int>(r.blockStats[i].entryPc));
            w.field("path_cycles", cp.blockCycles[i]);
            w.field("path_share",
                    cp.pathCycles
                        ? static_cast<double>(cp.blockCycles[i]) /
                              static_cast<double>(cp.pathCycles)
                        : 0.0);
            w.field("retired_nodes", r.blockStats[i].retiredNodes);
            w.field("ipc_bound", bounds[i]);
            line(w);
        }
        return r.exitCode;
    }

    // Human-readable report.
    std::cout << "== fgpsim profile: " << opts.source << " on "
              << config.name() << " ==\n\n"
              << "cycles             " << r.cycles << "\n"
              << "retired nodes      " << r.retiredNodes << "\n"
              << "nodes/cycle        " << format("%.3f", r.nodesPerCycle())
              << " (static bound " << format("%.3f", analysis.staticIpcBound)
              << ")\n"
              << "window cycles      " << profiler.windowCycles() << " ("
              << windows.size() << " windows)\n"
              << "critical path      " << cp.pathCycles << " cycles, "
              << cp.pathNodes << " nodes (implied IPC "
              << format("%.3f", cp.impliedIpc()) << ")\n";

    std::cout << "\nWindows:\n";
    Table wt({"idx", "start", "ipc", "retired", "squash", "mispred",
              "top stall", "ready~", "live^"});
    for (const profile::WindowSample &win : windows) {
        const Cause winCauses[] = {
            {"fetch_redirect", win.stalls.fetchRedirectSlots},
            {"fetch_idle", win.stalls.fetchIdleSlots},
            {"window_full", win.stalls.windowFullSlots},
            {"short_word", win.stalls.shortWordSlots},
            {"drain", win.stalls.drainSlots}};
        const Cause *topCause = &winCauses[0];
        for (const Cause &c : winCauses)
            if (c.cycles > topCause->cycles)
                topCause = &c;
        wt.addRow({std::to_string(win.index),
                   std::to_string(win.startCycle),
                   format("%.3f", win.ipc()),
                   std::to_string(win.retiredNodes),
                   std::to_string(win.squashedBlocks),
                   std::to_string(win.mispredicts),
                   topCause->cycles ? topCause->name : "-",
                   format("%.1f",
                          win.cycles
                              ? static_cast<double>(win.readySum) /
                                    static_cast<double>(win.cycles)
                              : 0.0),
                   std::to_string(win.liveMax)});
    }
    wt.print(std::cout);

    std::cout << "\nCritical path (" << cp.pathCycles << " of " << r.cycles
              << " cycles):\n";
    Table ct({"cause", "cycles", "share"});
    for (const Cause &c : causes)
        ct.addRow({c.name, std::to_string(c.cycles),
                   cp.pathCycles
                       ? format("%.1f%%",
                                100.0 * static_cast<double>(c.cycles) /
                                    static_cast<double>(cp.pathCycles))
                       : "-"});
    ct.print(std::cout);

    std::cout << "\nTop " << ranked.size()
              << " static blocks on the critical path (" << rankedTotal
              << " contributing):\n";
    Table bt({"block", "entry_pc", "path_cycles", "share", "ret_nodes",
              "ipc_bound"});
    for (std::size_t i : ranked) {
        bt.addRow({std::to_string(i),
                   std::to_string(r.blockStats[i].entryPc),
                   std::to_string(cp.blockCycles[i]),
                   format("%.1f%%",
                          100.0 * static_cast<double>(cp.blockCycles[i]) /
                              static_cast<double>(cp.pathCycles)),
                   std::to_string(r.blockStats[i].retiredNodes),
                   format("%.3f", bounds[i])});
    }
    bt.print(std::cout);
    return r.exitCode;
}

int
cmdProfile(const Options &opts)
{
    // Any interval-profiler flag switches to the simulating profiler;
    // the flagless form stays the legacy branch-arc statistics file
    // consumed by `fgpsim bbe`.
    if (opts.has("config") || opts.has("interval") || opts.has("json") ||
        opts.has("chrome") || opts.has("top")) {
        return cmdProfileInterval(opts);
    }

    const Source src = resolveSource(opts);
    SimOS os;
    src.prepare(os, InputSet::Profile, opts);
    Profile profile;
    InterpOptions iopts;
    iopts.profile = &profile;
    const RunResult r = interpret(src.program, os, iopts);

    const std::string text = serializeProfile(profile);
    if (opts.has("out")) {
        writeFile(opts.get("out"), text);
        std::cerr << "profiled " << r.dynamicNodes << " nodes, "
                  << profile.arcs.size() << " branches -> "
                  << opts.get("out") << "\n";
    } else {
        std::cout << text;
    }
    return 0;
}

int
cmdBbe(const Options &opts)
{
    if (!opts.has("profile"))
        fgp_fatal("bbe needs --profile FILE (from 'fgpsim profile')");
    const Source src = resolveSource(opts);
    const Profile profile = parseProfile(readFile(opts.get("profile")));

    EnlargeOptions eopts;
    if (opts.has("max-chain"))
        eopts.maxChainLen =
            static_cast<int>(*parseInt(opts.get("max-chain")));
    if (opts.has("ratio"))
        eopts.minArcRatio = std::atof(opts.get("ratio").c_str());
    if (opts.has("min-count"))
        eopts.minArcCount =
            static_cast<std::uint64_t>(*parseInt(opts.get("min-count")));

    const CodeImage single = buildCfg(src.program);
    const EnlargePlan plan = planEnlargement(single, profile, eopts);

    const std::string text = serializePlan(plan);
    if (opts.has("out")) {
        writeFile(opts.get("out"), text);
        std::cerr << "planned " << plan.chains.size() << " chains -> "
                  << opts.get("out") << "\n";
    } else {
        std::cout << text;
    }
    return 0;
}

enum class SimMode { Stats, Trace, Report };

int
cmdSim(const Options &opts, SimMode mode = SimMode::Stats)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/single"));

    CodeImage image = buildCfg(src.program);
    EnlargeStats estats;
    if (config.branch != BranchMode::Single) {
        EnlargePlan plan;
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(image, profile, {});
        }
        image = applyEnlargement(buildCfg(src.program), plan, &estats);
    }

    EngineOptions eopts;
    eopts.config = config;
    if (opts.has("ras"))
        eopts.predictor.rasDepth =
            static_cast<int>(*parseInt(opts.get("ras")));
    if (opts.has("window"))
        eopts.windowOverride =
            static_cast<int>(*parseInt(opts.get("window")));
    if (opts.has("conservative"))
        eopts.conservativeLoads = true;

    std::vector<std::int32_t> trace;
    if (config.branch == BranchMode::Perfect) {
        SimOS os;
        src.prepare(os, InputSet::Measure, opts);
        AtomicRunOptions aopts;
        aopts.recordTrace = true;
        trace = runAtomic(image, os, aopts).blockTrace;
        eopts.perfectTrace = &trace;
    }

    // The image must be translated for this machine configuration.
    CodeImage translated = image;
    translate(translated, config);

    // Observability sinks. Streams must outlive simulate(); the bus does
    // not own the sinks.
    obs::EventBus bus;
    std::ofstream traceFile, eventsFile, chromeFile;
    std::optional<obs::TextTraceSink> textSink;
    std::optional<obs::JsonlSink> jsonlSink;
    std::optional<obs::ChromeTraceSink> chromeSink;
    const bool traceToFile = mode == SimMode::Trace && opts.has("out");
    if (mode == SimMode::Trace) {
        std::ostream *dst = &std::cout;
        if (traceToFile) {
            traceFile.open(opts.get("out"), std::ios::binary);
            if (!traceFile)
                fgp_fatal("cannot write '", opts.get("out"), "'");
            dst = &traceFile;
        }
        textSink.emplace(*dst);
        bus.addSink(&*textSink);
    }
    if (opts.has("events")) {
        eventsFile.open(opts.get("events"), std::ios::binary);
        if (!eventsFile)
            fgp_fatal("cannot write '", opts.get("events"), "'");
        jsonlSink.emplace(eventsFile);
        bus.addSink(&*jsonlSink);
    }
    if (opts.has("chrome")) {
        chromeFile.open(opts.get("chrome"), std::ios::binary);
        if (!chromeFile)
            fgp_fatal("cannot write '", opts.get("chrome"), "'");
        chromeSink.emplace(chromeFile);
        bus.addSink(&*chromeSink);
    }
    if (bus.enabled())
        eopts.bus = &bus;

    SimOS os;
    src.prepare(os, InputSet::Measure, opts);
    const EngineResult r = simulate(translated, os, eopts);

    const obs::ReportMeta meta{opts.source, config.name()};
    const bool json = opts.has("json");
    if (mode == SimMode::Report) {
        if (json) {
            obs::writeResultJson(std::cout, r, meta);
        } else {
            // Put each block's static ceiling (analyzer packed bound)
            // next to its measured stats in the block table.
            const analyze::ImageAnalysis analysis =
                analyze::analyzeImage(translated, config.memory.hitLatency);
            std::vector<double> bounds(translated.blocks.size(), 0.0);
            for (const analyze::BlockBounds &b : analysis.blocks)
                if (b.block >= 0 &&
                    static_cast<std::size_t>(b.block) < bounds.size())
                    bounds[static_cast<std::size_t>(b.block)] =
                        b.packedBound;
            obs::printReport(std::cout, r, meta,
                             static_cast<int>(*parseInt(
                                 opts.get("top", "10"))),
                             &bounds);
        }
        return r.exitCode;
    }
    if (mode == SimMode::Stats && json)
        obs::writeResultJson(std::cout, r, meta);
    else if (mode == SimMode::Stats || traceToFile)
        std::cout << os.stdoutText();
    std::cerr << "config               " << config.name() << "\n"
              << "exit                 " << r.exitCode << "\n"
              << "cycles               " << r.cycles << "\n"
              << "retired nodes        " << r.retiredNodes << "\n"
              << "nodes per cycle      "
              << format("%.3f", r.nodesPerCycle()) << "\n"
              << "executed nodes       " << r.executedNodes << "\n"
              << "redundancy           "
              << format("%.3f", r.redundancy()) << "\n"
              << "mispredicts          " << r.mispredicts << "\n"
              << "faults fired         " << r.faultsFired << "\n";
    if (config.branch != BranchMode::Single)
        std::cerr << "enlargement          " << estats.chains
                  << " chains, mean length "
                  << format("%.2f", estats.meanChainLen) << "\n";
    return r.exitCode;
}

/**
 * Static verification pipeline: build the single image, replay the
 * enlargement (when the config uses enlarged code) and translate, running
 * the structural verifier and the transform-soundness checker at every
 * stage. Exit 0 iff no error-severity diagnostics.
 */
int
cmdCheck(const Options &opts)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/enlarged"));

    // The passes' own post-pass assertions would throw on the first bad
    // image; suspend them so every stage reports through one Report.
    verify::ScopedPostPassChecks suspend(false);

    verify::VerifyOptions vopts;
    vopts.strictUninit = opts.has("strict");

    verify::Report report;
    std::size_t blocks_checked = 0;
    std::size_t nodes_checked = 0;
    auto tally = [&](const CodeImage &image) {
        blocks_checked += image.blocks.size();
        nodes_checked += image.totalNodes();
    };

    const CodeImage single = buildCfg(src.program);
    verify::verifyImageInto(single, report, vopts, "single");
    tally(single);

    CodeImage image = single;
    EnlargeStats estats;
    if (config.branch != BranchMode::Single) {
        EnlargePlan plan;
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(single, profile, {});
        }
        image = applyEnlargement(single, plan, &estats);
        verify::verifyImageInto(image, report, vopts, "enlarged");
        verify::checkEnlargementSoundness(single, image, plan, report,
                                          EnlargeOptions{}.maxInstances,
                                          "enlarged");
        tally(image);
    }

    CodeImage translated = image;
    if (analyze::staticDisambigEnabled()) {
        // Replicate the harness: schedule with the no-alias facts, and
        // hand the same facts to the packing check so hoisted loads are
        // not flagged as IMG011.
        TranslateOptions txopts;
        txopts.disambigHook = analyze::disambigSchedulingHook();
        translate(translated, config, txopts);
    } else {
        translate(translated, config);
    }
    verify::VerifyOptions topts = vopts;
    topts.issue = &config.issue;
    if (analyze::staticDisambigEnabled())
        topts.memFacts = analyze::disambigSchedulingHook();
    verify::verifyImageInto(translated, report, topts, "translated");
    verify::checkTranslationSoundness(image, translated, report,
                                      "translated");
    tally(translated);

    const std::size_t errors = report.errorCount();
    const std::size_t warnings = report.warningCount();

    if (opts.has("json")) {
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.field("schema", "fgpsim-check-v1");
        json.field("workload", opts.source);
        json.field("config", config.name());
        json.field("strict", vopts.strictUninit);
        json.field("blocks_checked",
                   static_cast<std::uint64_t>(blocks_checked));
        json.field("nodes_checked",
                   static_cast<std::uint64_t>(nodes_checked));
        json.field("errors", static_cast<std::uint64_t>(errors));
        json.field("warnings", static_cast<std::uint64_t>(warnings));
        json.beginArray("diagnostics");
        for (const verify::Diagnostic &diag : report.diagnostics()) {
            json.beginObject();
            json.field("code", verify::codeId(diag.code));
            json.field("name", verify::codeName(diag.code));
            json.field("severity", verify::severityName(diag.severity));
            json.field("stage", diag.stage);
            json.field("block", diag.block);
            json.field("node", diag.node);
            json.field("orig_pc", diag.origPc);
            json.field("message", diag.message);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::cout << "\n";
    } else {
        std::cout << "check " << opts.source << " (" << config.name()
                  << ")\n"
                  << "  blocks checked     " << blocks_checked << "\n"
                  << "  nodes checked      " << nodes_checked << "\n";
        if (config.branch != BranchMode::Single)
            std::cout << "  enlargement        " << estats.chains
                      << " chains, " << estats.companions
                      << " companions, " << estats.faultNodes
                      << " fault nodes\n";
        if (!report.diagnostics().empty())
            std::cout << report.renderText();
        if (errors)
            std::cout << "check FAILED: " << errors << " errors, "
                      << warnings << " warnings\n";
        else
            std::cout << "check passed: 0 errors, " << warnings
                      << " warnings\n";
    }
    return errors ? 1 : 0;
}

/**
 * Static ILP analysis pipeline: build the single image, replay the
 * enlargement (when the config uses enlarged code), translate, and report
 * the analyzer's per-block dependence heights and ILP bounds plus the
 * workload lint's AN findings (docs/ANALYZER.md) — all without running a
 * single simulated cycle. Exit 0 unless the lint errors, or — under
 * --strict — finds anything at all.
 */
int
cmdAnalyze(const Options &opts)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/enlarged"));
    const int top = static_cast<int>(*parseInt(opts.get("top", "10")));

    const CodeImage single = buildCfg(src.program);
    CodeImage image = single;
    EnlargePlan plan;
    EnlargeStats estats;
    const bool enlarged_mode = config.branch != BranchMode::Single;
    if (enlarged_mode) {
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(single, profile, {});
        }
        image = applyEnlargement(single, plan, &estats);
    }

    CodeImage translated = image;
    translate(translated, config);

    // Bounds come from the translated image (words are the packed bound);
    // the lint reads the pre-translation image, where source-level
    // anti-patterns live.
    const int hit_latency = config.memory.hitLatency;
    const analyze::ImageAnalysis analysis =
        analyze::analyzeImage(translated, hit_latency);

    verify::Report report;
    analyze::LintOptions lopts;
    lopts.memHitLatency = hit_latency;
    if (enlarged_mode) {
        lopts.single = &single;
        lopts.plan = &plan;
        analyze::lintImage(image, report, lopts, "enlarged");
    } else {
        analyze::lintImage(single, report, lopts, "single");
    }

    std::vector<analyze::ChainAudit> audits;
    if (enlarged_mode)
        audits = analyze::auditChains(single, image, plan, hit_latency);

    // Static memory disambiguation over the translated image: the JSON
    // always carries the aggregate "memory" section plus the per-block
    // ranking; the human table is opt-in via --mem.
    const analyze::DisambigImage disambig =
        analyze::disambigImage(translated);
    std::vector<const analyze::BlockDisambig *> mem_ranked;
    for (const analyze::BlockDisambig &b : disambig.blocks)
        if (!b.pairs.empty())
            mem_ranked.push_back(&b);
    std::sort(mem_ranked.begin(), mem_ranked.end(),
              [](const analyze::BlockDisambig *a,
                 const analyze::BlockDisambig *b) {
                  if (a->mayDensity() != b->mayDensity())
                      return a->mayDensity() > b->mayDensity();
                  if (a->mayAlias != b->mayAlias)
                      return a->mayAlias > b->mayAlias;
                  return a->block < b->block;
              });
    if (static_cast<int>(mem_ranked.size()) > top)
        mem_ranked.resize(static_cast<std::size_t>(top));

    const std::size_t errors = report.errorCount();
    const std::size_t warnings = report.warningCount();

    // Blocks ranked by dependence height for the table / JSON array.
    std::vector<const analyze::BlockBounds *> ranked;
    ranked.reserve(analysis.blocks.size());
    for (const analyze::BlockBounds &b : analysis.blocks)
        ranked.push_back(&b);
    std::sort(ranked.begin(), ranked.end(),
              [](const analyze::BlockBounds *a,
                 const analyze::BlockBounds *b) {
                  if (a->critPath != b->critPath)
                      return a->critPath > b->critPath;
                  return a->block < b->block;
              });
    if (static_cast<int>(ranked.size()) > top)
        ranked.resize(static_cast<std::size_t>(top));

    if (opts.has("json")) {
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.field("schema", "fgpsim-analyze-v1");
        json.field("workload", opts.source);
        json.field("config", config.name());
        json.field("mem_hit_latency", hit_latency);
        json.field("blocks_analyzed",
                   static_cast<std::uint64_t>(analysis.blocks.size()));
        json.field("nodes_analyzed",
                   static_cast<std::uint64_t>(analysis.totalNodes));
        json.field("enlarged_blocks",
                   static_cast<std::uint64_t>(analysis.enlargedBlocks));
        json.field("companion_blocks",
                   static_cast<std::uint64_t>(analysis.companionBlocks));
        json.field("crit_path_max", analysis.critPathMax);
        json.field("mean_height", analysis.meanHeight);
        json.field("dataflow_bound", analysis.dataflowBound);
        json.field("static_ipc_bound", analysis.staticIpcBound);
        json.field("errors", static_cast<std::uint64_t>(errors));
        json.field("warnings", static_cast<std::uint64_t>(warnings));
        json.beginArray("resource_bounds");
        for (const analyze::ResourceBound &rb : analysis.resourceBounds) {
            json.beginObject();
            json.field("model", rb.issueIndex);
            json.field("width", rb.width);
            json.field("nodes_per_cycle", rb.bound);
            json.endObject();
        }
        json.endArray();
        json.beginArray("blocks");
        for (const analyze::BlockBounds *b : ranked) {
            json.beginObject();
            json.field("block", b->block);
            json.field("entry_pc", b->entryPc);
            json.field("block_nodes", static_cast<std::uint64_t>(b->nodes));
            json.field("block_words", static_cast<std::uint64_t>(b->words));
            json.field("height", b->critPath);
            json.field("residual_height", b->critPathResidual);
            json.field("ipc_dataflow", b->dataflowBound);
            json.field("ipc_packed", b->packedBound);
            json.endObject();
        }
        json.endArray();
        json.beginArray("chains");
        for (const analyze::ChainAudit &audit : audits) {
            json.beginObject();
            json.field("chain", static_cast<std::uint64_t>(audit.chainIndex));
            json.field("chain_entry_pc", audit.entryPc);
            json.field("members", static_cast<std::uint64_t>(audit.members));
            json.field("chain_nodes", static_cast<std::uint64_t>(audit.nodes));
            json.field("member_height_sum", audit.memberHeightSum);
            json.field("fused_height", audit.fusedHeight);
            json.field("height_reduction", audit.heightReduction());
            json.endObject();
        }
        json.endArray();
        json.beginObject("memory");
        json.field("pairs",
                   static_cast<std::uint64_t>(disambig.pairsTotal));
        json.field("no_alias",
                   static_cast<std::uint64_t>(disambig.noAliasTotal));
        json.field("must_alias",
                   static_cast<std::uint64_t>(disambig.mustAliasTotal));
        json.field("may_alias",
                   static_cast<std::uint64_t>(disambig.mayAliasTotal));
        json.field("independent_loads",
                   static_cast<std::uint64_t>(
                       disambig.independentLoadsTotal));
        json.field("enlarged_no_alias",
                   static_cast<std::uint64_t>(disambig.enlargedNoAlias));
        json.endObject();
        json.beginArray("mem_blocks");
        for (const analyze::BlockDisambig *b : mem_ranked) {
            json.beginObject();
            json.field("block", b->block);
            json.field("entry_pc", b->entryPc);
            json.field("loads", static_cast<std::uint64_t>(b->loads));
            json.field("stores", static_cast<std::uint64_t>(b->stores));
            json.field("pairs",
                       static_cast<std::uint64_t>(b->pairs.size()));
            json.field("no_alias", static_cast<std::uint64_t>(b->noAlias));
            json.field("must_alias",
                       static_cast<std::uint64_t>(b->mustAlias));
            json.field("may_alias",
                       static_cast<std::uint64_t>(b->mayAlias));
            json.field("independent_loads",
                       static_cast<std::uint64_t>(b->independentLoads));
            json.field("may_density", b->mayDensity());
            json.endObject();
        }
        json.endArray();
        json.beginArray("diagnostics");
        for (const verify::Diagnostic &diag : report.diagnostics()) {
            json.beginObject();
            json.field("code", verify::codeId(diag.code));
            json.field("name", verify::codeName(diag.code));
            json.field("severity", verify::severityName(diag.severity));
            json.field("stage", diag.stage);
            json.field("block", diag.block);
            json.field("node", diag.node);
            json.field("orig_pc", diag.origPc);
            json.field("message", diag.message);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::cout << "\n";
    } else {
        std::cout << "analyze " << opts.source << " (" << config.name()
                  << ")\n"
                  << "  blocks analyzed    " << analysis.blocks.size()
                  << " (" << analysis.enlargedBlocks << " enlarged, "
                  << analysis.companionBlocks << " companions)\n"
                  << "  nodes analyzed     " << analysis.totalNodes << "\n"
                  << "  dependence height  max " << analysis.critPathMax
                  << ", mean " << format("%.2f", analysis.meanHeight)
                  << "\n"
                  << "  dataflow bound     "
                  << format("%.3f", analysis.dataflowBound)
                  << " nodes/cycle\n"
                  << "  static IPC bound   "
                  << format("%.3f", analysis.staticIpcBound)
                  << " nodes/cycle (sound for any run)\n"
                  << "  resource bounds\n";
        for (const analyze::ResourceBound &rb : analysis.resourceBounds)
            std::cout << format("    model %d (width %2d)  %.3f\n",
                                rb.issueIndex, rb.width, rb.bound);
        if (!ranked.empty()) {
            std::cout << "  tallest blocks       nodes words height resid"
                         "  ipc\n";
            for (const analyze::BlockBounds *b : ranked)
                std::cout << format("    block %-4d pc %-5d %5zu %5zu "
                                    "%6d %5d %5.2f\n",
                                    b->block, b->entryPc, b->nodes,
                                    b->words, b->critPath,
                                    b->critPathResidual, b->packedBound);
        }
        if (!audits.empty()) {
            std::cout << "  chain audit (by predicted height reduction)\n";
            for (const analyze::ChainAudit &audit : audits)
                std::cout << format("    chain %-3zu pc %-5d %zu blocks: "
                                    "height %d -> %d (%+d)\n",
                                    audit.chainIndex, audit.entryPc,
                                    audit.members, audit.memberHeightSum,
                                    audit.fusedHeight,
                                    -audit.heightReduction());
        }
        if (opts.has("mem")) {
            std::cout << "  memory disambiguation  "
                      << disambig.pairsTotal << " pairs: "
                      << disambig.noAliasTotal << " no-alias, "
                      << disambig.mustAliasTotal << " must-alias, "
                      << disambig.mayAliasTotal << " may-alias; "
                      << disambig.independentLoadsTotal
                      << " independent loads\n";
            if (!mem_ranked.empty()) {
                std::cout << "  densest may-alias blocks  ld  st pairs  "
                             "no must  may density\n";
                for (const analyze::BlockDisambig *b : mem_ranked)
                    std::cout << format(
                        "    block %-4d pc %-5d %3zu %3zu %5zu %3zu "
                        "%4zu %4zu %7.2f\n",
                        b->block, b->entryPc, b->loads, b->stores,
                        b->pairs.size(), b->noAlias, b->mustAlias,
                        b->mayAlias, b->mayDensity());
            }
        }
        if (!report.diagnostics().empty())
            std::cout << report.renderText();
        std::cout << "analyze: " << errors << " errors, " << warnings
                  << " warnings\n";
    }
    if (errors)
        return 1;
    return opts.has("strict") && !report.diagnostics().empty() ? 1 : 0;
}

/** "10%" or "10" -> 10.0 (percent). */
double
parsePercent(const std::string &text, const char *flag)
{
    std::string digits = text;
    if (!digits.empty() && digits.back() == '%')
        digits.pop_back();
    char *end = nullptr;
    const double value = std::strtod(digits.c_str(), &end);
    if (digits.empty() || !end || *end != '\0' || value < 0.0)
        fgp_fatal("--", flag, " needs a non-negative percentage, got '",
                  text, "'");
    return value;
}

/**
 * Diff two fgpsim-run-v1 manifests: join the per-point records on
 * (workload, configuration), gate per-point nodes/cycle against
 * --tolerance and the runs' wall time against --wall-tolerance, and
 * summarize the IPC / redundancy / stall / host-speed movement. Exit 1
 * when B regresses past a gate relative to A — the CI perf gate.
 */
int
cmdCompare(const Options &opts)
{
    using metrics::RunFile;
    using metrics::RunPoint;

    if (opts.extra.size() != 1)
        fgp_fatal("compare needs exactly two manifest files");
    const std::string path_a = opts.source;
    const std::string path_b = opts.extra[0];

    const double tol = parsePercent(opts.get("tolerance", "10%"),
                                    "tolerance");
    const double wall_tol =
        parsePercent(opts.get("wall-tolerance",
                              opts.get("tolerance", "10%")),
                     "wall-tolerance");

    auto load = [](const std::string &path) {
        std::ifstream in(path);
        if (!in)
            fgp_fatal("cannot open '", path, "'");
        return metrics::parseRunFile(in, path);
    };
    const RunFile a = load(path_a);
    const RunFile b = load(path_b);
    // History files carry several runs; compare the most recent.
    const metrics::RunRecord &run_a = a.runs.back();
    const metrics::RunRecord &run_b = b.runs.back();

    std::map<std::pair<std::string, std::string>, const RunPoint *>
        b_points;
    for (const RunPoint &p : b.points)
        b_points[{p.workload, p.config}] = &p;

    struct PointDelta
    {
        const RunPoint *a = nullptr;
        const RunPoint *b = nullptr;
        double ipcPct = 0.0; ///< (b-a)/a in percent; negative = slower
    };
    std::vector<PointDelta> joined;
    std::size_t unmatched = 0;
    for (const RunPoint &p : a.points) {
        const auto it = b_points.find({p.workload, p.config});
        if (it == b_points.end()) {
            ++unmatched;
            continue;
        }
        PointDelta d;
        d.a = &p;
        d.b = it->second;
        const double ipc_a = p.num("nodes_per_cycle");
        const double ipc_b = it->second->num("nodes_per_cycle");
        d.ipcPct = ipc_a > 0.0 ? (ipc_b - ipc_a) / ipc_a * 100.0 : 0.0;
        joined.push_back(d);
    }
    unmatched += b.points.size() - joined.size();

    // Gates.
    std::vector<const PointDelta *> ipc_regressions;
    const PointDelta *worst = nullptr;
    double ipc_pct_sum = 0.0;
    for (const PointDelta &d : joined) {
        ipc_pct_sum += d.ipcPct;
        if (!worst || d.ipcPct < worst->ipcPct)
            worst = &d;
        if (d.ipcPct < -tol)
            ipc_regressions.push_back(&d);
    }
    const double wall_a = run_a.num("wall_seconds");
    const double wall_b = run_b.num("wall_seconds");
    const double wall_pct =
        wall_a > 0.0 ? (wall_b - wall_a) / wall_a * 100.0 : 0.0;
    const bool wall_regressed = wall_pct > wall_tol;
    const bool regressed = wall_regressed || !ipc_regressions.empty();

    // Aggregate movement: redundancy, stall slots, host speed.
    auto point_sum = [](const std::vector<RunPoint> &points,
                        const std::string &key) {
        double sum = 0.0;
        for (const RunPoint &p : points)
            sum += p.num(key);
        return sum;
    };
    const double mean_ipc_pct =
        joined.empty() ? 0.0
                       : ipc_pct_sum / static_cast<double>(joined.size());
    const double red_a = point_sum(a.points, "redundancy");
    const double red_b = point_sum(b.points, "redundancy");
    const double ns_a = run_a.num("host_ns_per_sim_cycle");
    const double ns_b = run_b.num("host_ns_per_sim_cycle");

    static const char *const kStallKeys[] = {
        "stall_fetch_redirect", "stall_fetch_idle", "stall_window_full",
        "stall_short_word", "stall_drain", "stall_operand_wait",
        "stall_memory_wait", "stall_serialize_wait", "stall_fu_busy"};

    if (opts.has("json")) {
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.field("schema", "fgpsim-compare-v1");
        json.field("a", path_a);
        json.field("b", path_b);
        json.field("tolerance_pct", tol);
        json.field("wall_tolerance_pct", wall_tol);
        json.field("points_compared",
                   static_cast<std::uint64_t>(joined.size()));
        json.field("points_unmatched",
                   static_cast<std::uint64_t>(unmatched));
        json.field("mean_ipc_pct", mean_ipc_pct);
        if (worst) {
            json.field("worst_ipc_pct", worst->ipcPct);
            json.field("worst_point", worst->a->workload + " " +
                                          worst->a->config);
        }
        json.field("wall_seconds_a", wall_a);
        json.field("wall_seconds_b", wall_b);
        json.field("wall_pct", wall_pct);
        json.field("host_ns_per_sim_cycle_a", ns_a);
        json.field("host_ns_per_sim_cycle_b", ns_b);
        json.beginObject("stall_deltas");
        for (const char *key : kStallKeys)
            json.field(key, point_sum(b.points, key) -
                                point_sum(a.points, key));
        json.endObject();
        json.field("ipc_regressions",
                   static_cast<std::uint64_t>(ipc_regressions.size()));
        json.field("wall_regressed", wall_regressed);
        json.field("regressed", regressed);
        json.endObject();
        std::cout << "\n";
        return regressed ? 1 : 0;
    }

    std::cout << "compare " << path_a << " (A: "
              << run_a.str("bench", "?") << " @ "
              << run_a.str("git", "?") << ")\n"
              << "     vs " << path_b << " (B: "
              << run_b.str("bench", "?") << " @ "
              << run_b.str("git", "?") << ")\n"
              << format("  points compared    : %zu (%zu unmatched)\n",
                        joined.size(), unmatched)
              << format("  mean IPC delta     : %+.2f%%\n", mean_ipc_pct);
    if (worst)
        std::cout << format("  worst IPC delta    : %+.2f%% (%s %s)\n",
                            worst->ipcPct, worst->a->workload.c_str(),
                            worst->a->config.c_str());
    std::cout << format("  redundancy sum     : %.4f -> %.4f\n", red_a,
                        red_b)
              << format("  wall seconds       : %.3f -> %.3f (%+.1f%%)\n",
                        wall_a, wall_b, wall_pct)
              << format("  host ns/sim cycle  : %.1f -> %.1f\n", ns_a,
                        ns_b);
    for (const char *key : kStallKeys) {
        const double sa = point_sum(a.points, key);
        const double sb = point_sum(b.points, key);
        if (sa != sb)
            std::cout << format("  %-19s: %.0f -> %.0f\n", key, sa, sb);
    }
    for (const PointDelta *d : ipc_regressions)
        std::cout << format("  REGRESSION %s %s: IPC %+.2f%% "
                            "(tolerance %.1f%%)\n",
                            d->a->workload.c_str(), d->a->config.c_str(),
                            d->ipcPct, tol);
    if (wall_regressed)
        std::cout << format("  REGRESSION wall time %+.1f%% "
                            "(tolerance %.1f%%)\n",
                            wall_pct, wall_tol);
    std::cout << (regressed ? "compare: REGRESSED\n" : "compare: ok\n");
    return regressed ? 1 : 0;
}

/**
 * Print the perf trajectory of an appended run-header history file
 * (RunRecorder::appendHistory, e.g. BENCH_history.jsonl): one row per
 * run with git describe, host ns per simulated cycle and the delta
 * against the previous run — `fgpsim compare` for the time axis.
 */
int
cmdHistory(const Options &opts)
{
    std::ifstream in(opts.source);
    if (!in) {
        // A missing history file is the normal state of a fresh checkout,
        // not an error: say how to start one and exit cleanly.
        std::cout << "history: no history file at '" << opts.source
                  << "'\nAppend runs with: build/bench/perf_selfcheck "
                     "--append " << opts.source << "\n";
        return 0;
    }
    // parseRunFile treats a record-less file as fatal (a manifest with no
    // run header is corrupt for `compare`), but an empty history is just a
    // history nobody has appended to yet — check before parsing.
    if (in.peek() == std::ifstream::traits_type::eof()) {
        std::cout << "history: '" << opts.source
                  << "' contains no run records yet\nAppend runs with: "
                     "build/bench/perf_selfcheck --append " << opts.source
                  << "\n";
        return 0;
    }
    const metrics::RunFile file = metrics::parseRunFile(in, opts.source);
    if (file.runs.empty()) {
        std::cout << "history: '" << opts.source
                  << "' contains no run records yet\nAppend runs with: "
                     "build/bench/perf_selfcheck --append " << opts.source
                  << "\n";
        return 0;
    }

    Table t({"git", "time", "bench", "sims", "wall_s", "ns/cycle",
             "delta"});
    double prev = 0.0;
    for (const metrics::RunRecord &run : file.runs) {
        const double ns = run.num("host_ns_per_sim_cycle");
        std::string delta = "-";
        if (prev > 0.0 && ns > 0.0)
            delta = format("%+.1f%%", (ns - prev) / prev * 100.0);
        if (ns > 0.0)
            prev = ns;
        t.addRow({run.str("git", "?"), run.str("iso_time", "?"),
                  run.str("bench", "?"),
                  format("%.0f", run.num("sims")),
                  format("%.2f", run.num("wall_seconds")),
                  format("%.1f", ns), delta});
    }
    t.print(std::cout);
    std::cout << file.runs.size() << " runs\n";
    return 0;
}

int
runCli(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Options opts;
    opts.command = argv[1];
    opts.source = argv[2];
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            // Only compare takes extra positionals (its second manifest).
            if (opts.command != "compare")
                fgp_fatal("unexpected argument '", arg, "'");
            opts.extra.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        if (arg == "conservative" || arg == "json" || arg == "strict" ||
            arg == "mem") {
            opts.flags[arg] = "1";
        } else {
            if (i + 1 >= argc)
                fgp_fatal("flag --", arg, " needs a value");
            opts.flags[arg] = argv[++i];
        }
    }

    if (opts.command == "asm")
        return cmdAsm(opts);
    if (opts.command == "run")
        return cmdRun(opts);
    if (opts.command == "profile")
        return cmdProfile(opts);
    if (opts.command == "bbe")
        return cmdBbe(opts);
    if (opts.command == "sim")
        return cmdSim(opts);
    if (opts.command == "trace")
        return cmdSim(opts, SimMode::Trace);
    if (opts.command == "report")
        return cmdSim(opts, SimMode::Report);
    if (opts.command == "check")
        return cmdCheck(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts);
    if (opts.command == "compare")
        return cmdCompare(opts);
    if (opts.command == "history")
        return cmdHistory(opts);
    usage();
}

} // namespace
} // namespace fgp

int
main(int argc, char **argv)
{
    try {
        return fgp::runCli(argc, argv);
    } catch (const fgp::FatalError &err) {
        std::cerr << "fgpsim: " << err.what() << "\n";
        return 1;
    }
}
