/**
 * @file
 * Address-indexed view of the in-flight store queue.
 *
 * The engine's speculative load path must find, for every byte of a
 * load, the youngest older store whose resolved address covers that
 * byte (§2.1 run-time memory disambiguation). Scanning the store queue
 * newest-to-oldest per byte is O(len x queue) per attempt, which
 * dominates simulation time for large windows (dyn256 keeps hundreds of
 * stores in flight). The index maintains, per byte address, the set of
 * resolved stores covering it, sorted by sequence number, so one lookup
 * is a hash probe plus a binary search over a (nearly always tiny)
 * version list.
 *
 * Lifecycle mirrors the store queue:
 *  - addStore()  when a store's address resolves (agen);
 *  - setData()   when the store's data operand arrives;
 *  - erase()     when the store commits at block retirement;
 *  - squash()    drops every store at or above a squash boundary.
 *
 * Stores with unresolved addresses are *not* in the index; the engine
 * gates loads on those separately (they could alias anything).
 */

#ifndef FGP_ENGINE_STORE_INDEX_HH
#define FGP_ENGINE_STORE_INDEX_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fgp {

class StoreIndex
{
  public:
    /** Outcome of a one-byte probe. */
    struct Lookup
    {
        enum class Status : std::uint8_t {
            Miss,     ///< no older store covers the byte; read memory
            NeedData, ///< covered by a store whose data is unresolved
            Hit,      ///< forwarded from the youngest covering store
        };
        Status status = Status::Miss;
        std::uint8_t value = 0;     ///< forwarded byte (Hit only)
        std::uint64_t blocker = 0;  ///< blocking store seq (NeedData only)
    };

    /** Register a store whose address just resolved. Data may follow. */
    void addStore(std::uint64_t seq, std::uint32_t addr, std::uint32_t len);

    /** Attach the store's data bytes (exactly the addStore length). */
    void setData(std::uint64_t seq, const std::uint8_t *data);

    /** Remove one store (block retirement commits it to memory). */
    void erase(std::uint64_t seq);

    /** Remove every store with seq >= @p seq_boundary (squash repair). */
    void squash(std::uint64_t seq_boundary);

    /**
     * Youngest store with seq < @p seq_limit covering @p byte_addr, or
     * Miss. The engine must have gated out older unresolved-address
     * stores before trusting a Miss.
     */
    Lookup lookup(std::uint32_t byte_addr, std::uint64_t seq_limit) const;

    bool empty() const { return extents_.empty(); }
    std::size_t size() const { return extents_.size(); }

  private:
    /** One resolved store's contribution to a single byte address. */
    struct ByteVer
    {
        std::uint64_t seq;
        std::uint8_t value;
        bool known;
    };

    struct Extent
    {
        std::uint32_t addr;
        std::uint32_t len;
    };

    void removeBytes(std::uint64_t seq, const Extent &extent);

    /** Byte address -> covering stores, sorted by seq ascending. */
    std::unordered_map<std::uint32_t, std::vector<ByteVer>> bytes_;

    /** Resolved stores by seq (ordered so squash can range-erase). */
    std::map<std::uint64_t, Extent> extents_;
};

} // namespace fgp

#endif // FGP_ENGINE_STORE_INDEX_HH
