#include "engine/engine.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>

#include "analyze/disambig.hh"
#include "base/logging.hh"
#include "branch/predictor.hh"
#include "engine/workspace.hh"
#include "memsys/memsys.hh"
#include "metrics/registry.hh"
#include "obs/bus.hh"
#include "profile/profile.hh"
#include "vm/exec.hh"

namespace fgp {

namespace {

std::atomic<std::uint64_t (*)()> g_allocHook{nullptr};

enum class NState : std::uint8_t { Waiting, Ready, Executing, Done };

using NodeRef = EngineWorkspace::NodeRef;
using BlockRec = EngineWorkspace::BlockRec;
using ChainItem = EngineWorkspace::ChainItem;
using ChainRef = EngineWorkspace::ChainRef;
using ExecRec = EngineWorkspace::ExecRec;
using MemRec = EngineWorkspace::MemRec;
using MetaRec = EngineWorkspace::MetaRec;

struct RenameEntry
{
    bool ready = true;
    std::uint32_t value = 0;
    std::uint64_t tag = 0;
    std::uint32_t tagPos = 0; ///< producer's node slot (tag != 0 only)
};

/**
 * The whole machine for one simulate() call. All per-node and per-block
 * state lives in the EngineWorkspace's SoA rings; a node is identified
 * by its dense issue position `pos` (ring slot `pos & nodeMask_`) and
 * validated by its unique sequence number — see workspace.hh and
 * DESIGN.md ("Engine memory layout").
 */
class Engine
{
  public:
    Engine(const CodeImage &image, SimOS &os, const EngineOptions &opts,
           EngineWorkspace &ws)
        : image_(image), os_(os), opts_(opts),
          bus_(opts.bus),
          prof_(opts.profile),
          memsys_(opts.config.memory),
          predictor_(opts.predictor),
          ws_(ws),
          mem_(ws.mem),
          windowCap_(opts.windowOverride > 0
                         ? opts.windowOverride
                         : windowBlocks(opts.config.discipline)),
          isStatic_(opts.config.discipline == Discipline::Static),
          perfect_(opts.config.branch == BranchMode::Perfect),
          hook_(g_allocHook.load(std::memory_order_relaxed)),
          disambig_(opts.disambig),
          disambigFast_(opts.disambig && opts.disambigFastPath),
          disambigXcheck_(opts.disambig && opts.disambigXcheck)
    {
        ws_.beginRun();
        nodeMask_ = ws_.nodeMask();
        blockMask_ = ws_.blockMask();
        if (prof_) {
            ws_.ensureProfLane();
            prof_->beginRun(opts.config.issue.width(),
                            image.blocks.size());
        }
        if (perfect_) {
            fgp_assert(opts.perfectTrace,
                       "perfect branch mode needs a committed-block trace");
            trace_ = opts.perfectTrace;
        }
    }

    EngineResult run();

  private:
    // ---- SoA accessors ----------------------------------------------
    std::uint64_t seqAt(std::uint32_t pos) const
    {
        return ws_.nodeSeq[pos & nodeMask_];
    }
    NState stateAt(std::uint32_t pos) const
    {
        return static_cast<NState>(ws_.nodeState[pos & nodeMask_]);
    }
    void setState(std::uint32_t pos, NState s)
    {
        ws_.nodeState[pos & nodeMask_] = static_cast<std::uint8_t>(s);
    }
    ExecRec &execAt(std::uint32_t pos)
    {
        return ws_.exec[pos & nodeMask_];
    }
    MemRec &memAt(std::uint32_t pos)
    {
        return ws_.memRec[pos & nodeMask_];
    }
    MetaRec &metaAt(std::uint32_t pos)
    {
        return ws_.meta[pos & nodeMask_];
    }
    ChainRef &waitAt(std::uint32_t pos)
    {
        return ws_.waitChain[pos & nodeMask_];
    }
    ChainRef &loadAt(std::uint32_t pos)
    {
        return ws_.loadChain[pos & nodeMask_];
    }
    BlockRec &blockAt(std::uint32_t bpos)
    {
        return ws_.blocks[bpos & blockMask_];
    }
    profile::NodeProf &profAt(std::uint32_t pos)
    {
        return ws_.profRec[pos & nodeMask_];
    }

    /** Monotone counter totals for the interval profiler's window
     *  folds (per-window values are deltas of these). */
    profile::CounterSnapshot
    profileCounters() const
    {
        profile::CounterSnapshot c;
        c.issuedNodes = result_.issuedNodes;
        c.retiredNodes = result_.retiredNodes;
        c.executedNodes = result_.executedNodes;
        c.committedBlocks = result_.committedBlocks;
        c.squashedBlocks = result_.squashedBlocks;
        c.mispredicts = result_.mispredicts;
        c.faultsFired = result_.faultsFired;
        c.fetchRedirectCycles = fetchRedirectCycles_;
        c.fetchIdleCycles = fetchIdleCycles_;
        c.windowFullCycles = issueStallWindow_;
        c.shortWordSlots = shortWordSlots_;
        c.operandWaitNodeCycles = result_.stalls.operandWaitNodeCycles;
        c.memoryWaitNodeCycles = result_.stalls.memoryWaitNodeCycles;
        c.serializeWaitNodeCycles =
            result_.stalls.serializeWaitNodeCycles;
        c.fuBusyNodeCycles = result_.stalls.fuBusyNodeCycles;
        return c;
    }

    /**
     * Is this (pos, seq) reference a currently in-flight node? Live
     * nodes occupy the contiguous pos range [headPos_, nextPos_);
     * squash rewinds nextPos_ (un-reused slots fail the range check)
     * and slot reuse changes the seq (reused slots fail the tag check),
     * so no slot ever needs wiping.
     */
    bool liveNode(const NodeRef &ref) const
    {
        return ref.pos >= headPos_ && ref.pos < nextPos_ &&
               seqAt(ref.pos) == ref.seq;
    }

    // ---- chain plumbing ---------------------------------------------
    void
    chainAppend(ChainRef &chain, const ChainItem &item)
    {
        const std::uint32_t idx = ws_.chains.alloc(item);
        if (chain.head == kNilIndex)
            chain.head = idx;
        else
            ws_.chains.setNext(chain.tail, idx);
        chain.tail = idx;
    }

    void
    releaseChain(ChainRef &chain)
    {
        std::uint32_t idx = chain.head;
        chain.head = chain.tail = kNilIndex;
        while (idx != kNilIndex) {
            const std::uint32_t nxt = ws_.chains.next(idx);
            ws_.chains.release(idx);
            idx = nxt;
        }
    }

    // ---- pipeline stages --------------------------------------------
    void processCompletions();
    void retireBlocks();
    void refreshPending();
    void scheduleDynamic();
    void scheduleStaticWord();
    void issueCycle();

    void onDataReady(std::uint32_t pos);
    void tryStoreAgen(std::uint32_t pos);
    void completeAt(std::uint64_t cycle, std::uint64_t seq,
                    std::uint32_t pos);
    void executeNode(std::uint32_t pos);
    bool tryExecuteLoad(std::uint32_t pos);
    bool disambigFastEligible(std::uint32_t pos);
    void xcheckRetiringBlock(const BlockRec &front);
    void resolveControl(std::uint32_t pos);
    void parkLoad(std::uint32_t blocker_pos, std::uint64_t blocker_seq,
                  std::uint32_t load_pos, std::uint32_t addr);

    void decideNextFetch(BlockRec &block);
    void squashFrom(std::uint64_t bseq_inclusive);
    void rebuildRenameMap();
    void redirectTo(std::int32_t image_block);
    std::int32_t mapPc(std::int32_t pc);

    enum class MergeStatus { Ok, NeedData, UnknownAddr };
    /**
     * Speculatively read @p len bytes at @p addr as seen by sequence
     * number @p seq_limit. On failure, @p blocker (when non-null) names
     * the oldest node whose resolution must precede a retry: a store
     * with an unknown address or unknown data, or a pending syscall;
     * @p blocker_pos receives that node's slot for chain parking.
     */
    MergeStatus specRead(std::uint64_t seq_limit, std::uint32_t addr,
                         std::uint32_t len, std::uint8_t *out,
                         bool *forwarded,
                         std::uint64_t *blocker = nullptr,
                         std::uint32_t *blocker_pos = nullptr);

    /** Watermark fronts: oldest live entry still unresolved, with
     *  resolved/dead entries popped lazily. Rings are pushed in issue
     *  (= seq) order and suffix-popped on squash, so the surviving
     *  front is exactly the old ordered-set begin(). */
    const NodeRef *frontUnknownStoreAddr();
    const NodeRef *frontPendingSyscall();
    const NodeRef *frontUnknownStoreData();

    /** Move loads blocked on slot @p pos to the retry list. */
    void wakeLoadsBlockedOn(std::uint32_t pos);

    void finishExit(std::uint32_t pos);

    // ---- members ----------------------------------------------------
    const CodeImage &image_;
    SimOS &os_;
    EngineOptions opts_;
    obs::EventBus *bus_;
    profile::IntervalProfiler *const prof_; ///< may be null (the default)
    MemorySystem memsys_;
    BranchPredictor predictor_;
    EngineWorkspace &ws_;
    SparseMemory &mem_;

    const int windowCap_;
    const bool isStatic_;
    const bool perfect_;
    std::uint64_t (*const hook_)(); ///< allocation sampler (may be null)
    /** Static no-alias facts (EngineOptions::disambig; may be null). */
    const analyze::DisambigImage *const disambig_;
    const bool disambigFast_;   ///< independent loads bypass the probe
    const bool disambigXcheck_; ///< retirement re-checks no-alias pairs
    const std::vector<std::int32_t> *trace_ = nullptr;
    std::size_t traceIdx_ = 0;

    EngineResult result_;
    std::uint64_t cycle_ = 0;
    std::uint64_t seqCounter_ = 1;
    std::uint64_t bseqCounter_ = 1;

    std::uint32_t nodeMask_ = 0;
    std::uint32_t blockMask_ = 0;
    std::uint32_t headPos_ = 0;      ///< oldest live node pos
    std::uint32_t nextPos_ = 0;      ///< next node pos to allocate
    std::uint32_t headBlockPos_ = 0; ///< oldest in-flight block pos
    std::uint32_t nextBlockPos_ = 0; ///< next block pos to allocate

    RenameEntry rename_[kNumRegs];
    std::uint32_t committedRegs_[kNumRegs] = {};

    /** Set when retirement/completion/squash may change syscall
     *  eligibility; cleared after the pendingSys scan. */
    bool sysWake_ = true;

    /** Fault-target chooser (extension): entry pc -> alternate block.
     *  Off the hot path; only predictFaultTargets configs touch it. */
    struct FaultChoice
    {
        std::int32_t target = -1;
        std::uint8_t counter = 0; ///< 0..3; >=2 selects the alternate
    };
    std::unordered_map<std::int32_t, FaultChoice> faultChoice_;
    std::uint64_t issueCycles_ = 0;

    // Per-cycle counters kept as members (a StatGroup add costs a string
    // key construction plus a map lookup; these fire nearly every cycle).
    std::uint64_t fetchRedirectCycles_ = 0;
    std::uint64_t fetchIdleCycles_ = 0;
    std::uint64_t issueStallWindow_ = 0;
    std::uint64_t wordStallCycles_ = 0;
    /** Issue slots wasted by words narrower than the machine width. */
    std::uint64_t shortWordSlots_ = 0;
    /** Static-disambiguation books (folded into result_ after the run). */
    std::uint64_t disambigFastLoads_ = 0;
    std::uint64_t disambigProbesEliminated_ = 0;
    std::uint64_t disambigCheckedPairs_ = 0;
    /** Refs currently parked on load chains (includes refs whose load
     *  was squashed while parked, until their blocker resolves). */
    std::uint64_t parkedLoads_ = 0;

    // Incremental window-content counters (the paper's three measures).
    std::int64_t validCount_ = 0;  ///< issued, not retired
    std::int64_t activeCount_ = 0; ///< issued, not scheduled
    std::int64_t readyCount_ = 0;  ///< active and schedulable

    // Fetch state.
    std::int32_t fetchImageBlock_ = -1; ///< block being issued (-1: pick new)
    std::int32_t nextFetchImageBlock_ = -1;
    std::uint64_t fetchBseq_ = 0;
    int fetchStall_ = 0;
    bool fetchIdle_ = false; ///< no known next block (exit path or JR wait)
    std::uint64_t jrWaitBseq_ = 0; ///< block whose JR fetch waits on

    /** Resolving control node of the last fetch redirect; the first node
     *  issued afterwards records it as its Branch dependence edge. */
    std::uint64_t pendingRedirectSeq_ = 0;

    bool exited_ = false;
};

/**
 * Publish one typed event when a bus is attached. The arguments are the
 * designated initializers of one obs::SimEvent; they must not be
 * evaluated when no bus is attached — emissions sit on the
 * execute/complete hot paths.
 */
#define OBS_EMIT(...)                                                         \
    do {                                                                      \
        if (bus_)                                                             \
            bus_->emit(obs::SimEvent{__VA_ARGS__});                           \
    } while (0)

// ---------------------------------------------------------------------
// Rename / operand plumbing
// ---------------------------------------------------------------------

/**
 * Address generation for stores happens as soon as the base register is
 * available, independent of the data operand — this is what lets younger
 * loads disambiguate and bypass (§2.1). No function unit is charged for
 * it; the store still occupies a memory port when it executes.
 */
void
Engine::tryStoreAgen(std::uint32_t pos)
{
    ExecRec &ex = execAt(pos);
    MemRec &mr = memAt(pos);
    if (!ex.node->isStore() || mr.addrKnown || !(ex.srcReadyMask & 1))
        return;
    mr.addr = effectiveAddress(*ex.node, ex.srcVal[0]);
    mr.len = static_cast<std::uint8_t>(accessBytes(ex.node->op));
    mr.addrKnown = true; // the unknown-addr watermark skips this entry now
    ws_.storeIndex.addStore(seqAt(pos), mr.addr, mr.len, pos);
    wakeLoadsBlockedOn(pos);
}

void
Engine::wakeLoadsBlockedOn(std::uint32_t pos)
{
    ChainRef &chain = loadAt(pos);
    std::uint32_t idx = chain.head;
    if (idx == kNilIndex)
        return;
    chain.head = chain.tail = kNilIndex;
    while (idx != kNilIndex) {
        const ChainItem item = ws_.chains.at(idx);
        const std::uint32_t nxt = ws_.chains.next(idx);
        ws_.chains.release(idx);
        --parkedLoads_;
        if (bus_)
            bus_->emit(obs::SimEvent{.kind = obs::EventKind::LoadWake,
                                     .cycle = cycle_,
                                     .seq = item.seq,
                                     .bseq = item.aux});
        ws_.retryLoads.push_back({item.seq, item.pos});
        idx = nxt;
    }
}

void
Engine::onDataReady(std::uint32_t pos)
{
    fgp_assert(stateAt(pos) == NState::Waiting, "double wakeup");
    setState(pos, NState::Ready);
    ++readyCount_;
    if (prof_)
        profAt(pos).readyCycle = static_cast<std::uint32_t>(cycle_);
    if (isStatic_)
        return; // the in-order word dispatcher polls readiness itself

    const Node &node = *execAt(pos).node;
    const NodeRef ref{seqAt(pos), pos};
    if (node.isSys()) {
        ws_.pendingSys.push_back(ref);
        sysWake_ = true;
    } else if (node.isLoad()) {
        // First attempt happens at the next refresh point, exactly when
        // the polled scheduler would have seen it.
        ws_.retryLoads.push_back(ref);
    } else if (node.isMem()) {
        ws_.readyMem.push(ref);
    } else {
        ws_.readyAlu.push(ref);
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

void
Engine::completeAt(std::uint64_t done_cycle, std::uint64_t seq,
                   std::uint32_t pos)
{
    ws_.events.push({done_cycle, seq, pos});
}

const NodeRef *
Engine::frontUnknownStoreAddr()
{
    auto &ring = ws_.unknownStoreAddrs;
    while (!ring.empty()) {
        const NodeRef &r = ring.front();
        if (liveNode(r) && !memAt(r.pos).addrKnown)
            return &r;
        ring.pop_front();
    }
    return nullptr;
}

const NodeRef *
Engine::frontPendingSyscall()
{
    auto &ring = ws_.pendingSyscallSeqs;
    while (!ring.empty()) {
        const NodeRef &r = ring.front();
        // A syscall stops being a barrier the moment it executes —
        // matching the old set erasure inside the execute path.
        if (liveNode(r) && stateAt(r.pos) < NState::Executing)
            return &r;
        ring.pop_front();
    }
    return nullptr;
}

const NodeRef *
Engine::frontUnknownStoreData()
{
    auto &ring = ws_.unknownStoreData;
    while (!ring.empty()) {
        const NodeRef &r = ring.front();
        if (liveNode(r) && !memAt(r.pos).dataKnown)
            return &r;
        ring.pop_front();
    }
    return nullptr;
}

Engine::MergeStatus
Engine::specRead(std::uint64_t seq_limit, std::uint32_t addr,
                 std::uint32_t len, std::uint8_t *out, bool *forwarded,
                 std::uint64_t *blocker, std::uint32_t *blocker_pos)
{
    // Gate: every older store must have a known address, and no older
    // system call may still be pending (system calls write memory
    // directly, so they are barriers for younger loads). The watermark
    // front is the oldest unresolved member, so the check is O(1).
    if (const NodeRef *w = frontUnknownStoreAddr();
        w && w->seq < seq_limit) {
        if (blocker) {
            *blocker = w->seq;
            *blocker_pos = w->pos;
        }
        return MergeStatus::UnknownAddr;
    }
    if (const NodeRef *w = frontPendingSyscall(); w && w->seq < seq_limit) {
        if (blocker) {
            *blocker = w->seq;
            *blocker_pos = w->pos;
        }
        return MergeStatus::UnknownAddr;
    }
    if (opts_.conservativeLoads) {
        // All older stores have known addresses here (gate above), so
        // "any older store still lacking data" is exactly the oldest
        // member of the unknown-data watermark.
        if (const NodeRef *w = frontUnknownStoreData();
            w && w->seq < seq_limit) {
            if (blocker) {
                *blocker = w->seq;
                *blocker_pos = w->pos;
            }
            return MergeStatus::NeedData;
        }
    }

    bool any_forward = false;
    for (std::uint32_t b = 0; b < len; ++b) {
        const std::uint32_t byte_addr = addr + b;
        const StoreIndex::Lookup hit =
            ws_.storeIndex.lookup(byte_addr, seq_limit);
        switch (hit.status) {
          case StoreIndex::Lookup::Status::NeedData:
            if (blocker) {
                *blocker = hit.blocker;
                *blocker_pos = hit.blockerPos;
            }
            return MergeStatus::NeedData;
          case StoreIndex::Lookup::Status::Hit:
            out[b] = hit.value;
            any_forward = true;
            break;
          case StoreIndex::Lookup::Status::Miss:
            out[b] = mem_.read8(byte_addr);
            break;
        }
    }
    if (forwarded)
        *forwarded = any_forward;
    return MergeStatus::Ok;
}

void
Engine::parkLoad(std::uint32_t blocker_pos, std::uint64_t blocker_seq,
                 std::uint32_t load_pos, std::uint32_t addr)
{
    const std::uint64_t bseq = blockAt(metaAt(load_pos).blockPos).bseq;
    chainAppend(loadAt(blocker_pos),
                {seqAt(load_pos), bseq, load_pos});
    ++parkedLoads_;
    if (prof_) {
        profile::NodeProf &pr = profAt(load_pos);
        pr.parentSeq = blocker_seq;
        pr.edge = profile::EdgeKind::Memory;
    }
    OBS_EMIT(.kind = obs::EventKind::LoadBlock, .cycle = cycle_,
             .seq = seqAt(load_pos), .bseq = bseq,
             .node = execAt(load_pos).node, .addr = addr,
             .blocker = blocker_seq);
}

/**
 * Can the load at @p pos skip run-time disambiguation entirely? Requires
 * facts proving it no-alias against every store of its block, in a window
 * state where every older in-flight store belongs to that same dynamic
 * block (store queue empty or fronted by it) and no older system call is
 * pending. Older-block stores already retired are visible in memory;
 * same-block stores are proven disjoint (so can neither forward to nor
 * conflict with the load); younger stores never affect an older load.
 * Facts whose shape does not match the image are stale and unusable.
 */
bool
Engine::disambigFastEligible(std::uint32_t pos)
{
    if (!disambigFast_ || opts_.conservativeLoads)
        return false;
    const MetaRec &meta = metaAt(pos);
    const BlockRec &block = blockAt(meta.blockPos);
    const analyze::BlockDisambig &bd =
        disambig_->blocks[static_cast<std::size_t>(block.imageId)];
    if (bd.nodeCount != image_.block(block.imageId).nodes.size() ||
        meta.nodeIdx >= bd.loadIndependent.size() ||
        !bd.loadIndependent[meta.nodeIdx])
        return false;
    if (!ws_.storeQueue.empty() &&
        metaAt(ws_.storeQueue.front().pos).blockPos != meta.blockPos)
        return false;
    if (const NodeRef *w = frontPendingSyscall(); w && w->seq < seqAt(pos))
        return false;
    return true;
}

bool
Engine::tryExecuteLoad(std::uint32_t pos)
{
    ExecRec &ex = execAt(pos);
    const std::uint32_t addr = effectiveAddress(*ex.node, ex.srcVal[0]);
    const std::uint32_t len = accessBytes(ex.node->op);
    std::uint8_t bytes[4];
    bool forwarded = false;
    if (disambigFastEligible(pos)) {
        // Statically proven independent: read memory directly, no
        // store-queue probe and nothing to park on.
        for (std::uint32_t b = 0; b < len; ++b)
            bytes[b] = mem_.read8(addr + b);
        ++disambigFastLoads_;
        disambigProbesEliminated_ += len;
    } else {
        std::uint64_t blocked_on = 0;
        std::uint32_t blocked_pos = 0;
        const MergeStatus status =
            specRead(seqAt(pos), addr, len, bytes, &forwarded,
                     &blocked_on, &blocked_pos);
        if (status != MergeStatus::Ok) {
            if (!isStatic_) {
                fgp_assert(blocked_on != 0,
                           "blocked load without a blocker");
                parkLoad(blocked_pos, blocked_on, pos, addr);
            }
            return false;
        }
    }

    MemRec &mr = memAt(pos);
    mr.addr = addr;
    mr.addrKnown = true;
    ex.value = loadResult(ex.node->op, bytes);
    setState(pos, NState::Executing);
    --activeCount_;
    --readyCount_;
    ++result_.executedNodes;
    if (prof_) {
        profile::NodeProf &pr = profAt(pos);
        pr.schedCycle = static_cast<std::uint32_t>(cycle_);
        // A parked load whose value arrived from the store queue was
        // bound by the forwarding store, not by disambiguation per se.
        if (forwarded && pr.edge == profile::EdgeKind::Memory)
            pr.edge = profile::EdgeKind::Forward;
    }
    const int latency = memsys_.loadLatency(addr, forwarded);
    const std::uint64_t bseq = blockAt(metaAt(pos).blockPos).bseq;
    if (bus_ && forwarded)
        bus_->emit(obs::SimEvent{.kind = obs::EventKind::StoreForward,
                                 .cycle = cycle_,
                                 .seq = seqAt(pos),
                                 .bseq = bseq,
                                 .node = ex.node,
                                 .addr = addr});
    OBS_EMIT(.kind = obs::EventKind::Schedule, .cycle = cycle_,
             .seq = seqAt(pos), .bseq = bseq, .node = ex.node,
             .addr = addr, .latency = latency, .forwarded = forwarded);
    completeAt(cycle_ + static_cast<std::uint64_t>(latency), seqAt(pos),
               pos);
    return true;
}

void
Engine::executeNode(std::uint32_t pos)
{
    ExecRec &ex = execAt(pos);
    setState(pos, NState::Executing);
    --activeCount_;
    --readyCount_;
    ++result_.executedNodes;
    if (prof_)
        profAt(pos).schedCycle = static_cast<std::uint32_t>(cycle_);
    OBS_EMIT(.kind = obs::EventKind::Schedule, .cycle = cycle_,
             .seq = seqAt(pos),
             .bseq = blockAt(metaAt(pos).blockPos).bseq, .node = ex.node,
             .latency = 1);
    int latency = 1;

    const Node &node = *ex.node;
    switch (node.cls()) {
      case NodeClass::IntAlu:
        ex.value = evalAlu(node, ex.srcVal[0], ex.srcVal[1]);
        break;
      case NodeClass::Fault:
        ex.value = evalCondition(node.op, ex.srcVal[0], ex.srcVal[1]) ? 1
                                                                      : 0;
        break;
      case NodeClass::Control:
        switch (node.op) {
          case Opcode::J:
            ex.value = 0;
            break;
          case Opcode::JAL:
            ex.value = static_cast<std::uint32_t>(node.origPc + 1);
            break;
          case Opcode::JR:
            ex.value = ex.srcVal[0];
            break;
          default: // conditional branch
            ex.value =
                evalCondition(node.op, ex.srcVal[0], ex.srcVal[1]) ? 1 : 0;
            break;
        }
        break;
      case NodeClass::Mem: {
        fgp_assert(node.isStore(), "loads take the tryExecuteLoad path");
        tryStoreAgen(pos); // usually already done at wakeup
        MemRec &mr = memAt(pos);
        fgp_assert(mr.addrKnown, "store executing without an address");
        const std::uint32_t len = storeBytes(node.op, ex.srcVal[1],
                                             mr.data);
        fgp_assert(len == mr.len, "store width changed");
        mr.dataKnown = true; // unknown-data watermark skips this entry
        ws_.storeIndex.setData(seqAt(pos), mr.data);
        wakeLoadsBlockedOn(pos);
        break;
      }
      case NodeClass::Sys: {
        // Reads observe in-flight older stores; writes are immediate (the
        // block is the window's oldest and cannot be squashed).
        const std::uint64_t seq = seqAt(pos);
        const MemPorts ports{
            [&](std::uint32_t a) {
                std::uint8_t byte;
                const MergeStatus st = specRead(seq, a, 1, &byte, nullptr);
                fgp_assert(st == MergeStatus::Ok,
                           "system call read raced an incomplete store");
                return byte;
            },
            [&](std::uint32_t a, std::uint8_t v) { mem_.write8(a, v); },
        };
        // The syscall barrier lifts here: state is Executing, so the
        // pending-syscall watermark now skips this entry.
        const std::uint64_t pre_alloc = hook_ ? hook_() : 0;
        const std::uint32_t res =
            os_.syscall(ex.srcVal[0], ex.srcVal[1], ex.srcVal[2],
                        ex.srcVal[3], ex.srcVal[4], ports);
        if (hook_)
            result_.allocSyscall += hook_() - pre_alloc;
        wakeLoadsBlockedOn(pos);
        if (os_.exited()) {
            finishExit(pos);
            return;
        }
        ex.value = res;
        break;
      }
    }
    completeAt(cycle_ + static_cast<std::uint64_t>(latency), seqAt(pos),
               pos);
}

void
Engine::finishExit(std::uint32_t pos)
{
    exited_ = true;
    result_.exited = true;
    result_.exitCode = os_.exitCode();

    // Commit the partial block up to and including the exit node, exactly
    // like the functional VM counts it.
    const BlockRec &block = blockAt(metaAt(pos).blockPos);
    const std::uint64_t partial = metaAt(pos).nodeIdx + 1;
    OBS_EMIT(.kind = obs::EventKind::Retire, .cycle = cycle_,
             .bseq = block.bseq, .imageId = block.imageId,
             .count = static_cast<std::uint32_t>(partial), .partial = true);
    BlockStat &bs = result_.blockStats[block.imageId];
    ++bs.retiredBlocks;
    bs.retiredNodes += partial;
    if (prof_) {
        for (std::uint32_t p = block.firstPos;
             p != block.firstPos + static_cast<std::uint32_t>(partial); ++p)
            prof_->appendRetired(seqAt(p), profAt(p),
                                 static_cast<std::uint32_t>(block.imageId));
    }
    result_.retiredNodes += partial;
    ++result_.committedBlocks;
    result_.blockSize.add(partial);
    result_.cycles = cycle_ + 1;
}

// ---------------------------------------------------------------------
// Completion, resolution, retirement
// ---------------------------------------------------------------------

void
Engine::processCompletions()
{
    auto &due = ws_.dueScratch;
    due.clear();
    auto &events = ws_.events;
    while (!events.empty() && events.top().cycle <= cycle_) {
        due.push_back({events.top().seq, events.top().pos});
        events.pop();
    }
    // In-order resolution priority: an older fault/mispredict must act
    // before younger control nodes completing in the same cycle.
    std::sort(due.begin(), due.end(),
              [](const NodeRef &a, const NodeRef &b) {
                  return a.seq < b.seq;
              });

    for (const NodeRef &ref : due) {
        if (!liveNode(ref) || stateAt(ref.pos) != NState::Executing)
            continue; // squashed since scheduling
        const std::uint32_t pos = ref.pos;
        ExecRec &ex = execAt(pos);
        BlockRec &block = blockAt(metaAt(pos).blockPos);
        setState(pos, NState::Done);
        ++block.doneCount;
        if (prof_)
            profAt(pos).completeCycle = static_cast<std::uint32_t>(cycle_);
        sysWake_ = true; // progress in the oldest block frees syscalls
        OBS_EMIT(.kind = obs::EventKind::Complete, .cycle = cycle_,
                 .seq = ref.seq, .bseq = block.bseq, .node = ex.node,
                 .value = ex.value);

        // Publish to the rename map.
        const std::uint8_t dst = ex.node->dstReg();
        if (dst != kRegNone && dst != kRegZero) {
            RenameEntry &entry = rename_[dst];
            if (!entry.ready && entry.tag == ref.seq) {
                entry.ready = true;
                entry.value = ex.value;
            }
        }

        // Wake consumers: drain the producer's wait chain in append
        // order (the order the old per-producer vector preserved).
        const std::uint32_t value = ex.value;
        ChainRef &chain = waitAt(pos);
        std::uint32_t idx = chain.head;
        chain.head = chain.tail = kNilIndex;
        while (idx != kNilIndex) {
            const ChainItem item = ws_.chains.at(idx);
            const std::uint32_t nxt = ws_.chains.next(idx);
            ws_.chains.release(idx);
            idx = nxt;
            if (!liveNode({item.seq, item.pos}))
                continue; // consumer squashed
            if (stateAt(item.pos) != NState::Waiting)
                continue;
            ExecRec &consumer = execAt(item.pos);
            const int slot = static_cast<int>(item.aux);
            if ((consumer.srcReadyMask >> slot) & 1)
                continue;
            consumer.srcVal[slot] = value;
            consumer.srcReadyMask |= 1u << slot;
            if (prof_) {
                // Last operand writer wins: the edge that releases the
                // consumer is the one critical-path walks follow.
                profile::NodeProf &pr = profAt(item.pos);
                pr.parentSeq = ref.seq;
                pr.edge = profile::EdgeKind::Data;
            }
            if (consumer.node->isStore() && slot == 0)
                tryStoreAgen(item.pos);
            if (--consumer.unresolved == 0)
                onDataReady(item.pos);
        }

        if (ex.node->isFault() || ex.node->isControl())
            resolveControl(pos);
    }
}

void
Engine::resolveControl(std::uint32_t pos)
{
    const Node &node = *execAt(pos).node;
    const std::uint32_t value = execAt(pos).value;
    const std::uint64_t seq = seqAt(pos);
    BlockRec &block = blockAt(metaAt(pos).blockPos);

    if (node.isFault()) {
        if (value) {
            if (perfect_)
                fgp_panic("fault node fired under perfect prediction");
            ++result_.faultsFired;
            ++result_.blockStats[block.imageId].faultsFired;
            const std::int32_t target = node.target;
            const std::uint64_t bseq = block.bseq;
            OBS_EMIT(.kind = obs::EventKind::AssertFire, .cycle = cycle_,
                     .seq = seq, .bseq = bseq,
                     .imageId = block.imageId, .node = &node,
                     .target = target);
            if (opts_.predictFaultTargets) {
                // Strengthen the chooser toward the block we fault into.
                FaultChoice &choice =
                    faultChoice_[image_.block(block.imageId).entryPc];
                if (choice.target == target) {
                    if (choice.counter < 3)
                        ++choice.counter;
                } else {
                    // A new alternate starts weak: only repeated faults
                    // into the same block switch the entry over.
                    choice.target = target;
                    choice.counter = 1;
                }
            }
            squashFrom(bseq);
            redirectTo(target);
            if (prof_)
                pendingRedirectSeq_ = seq;
        }
        return;
    }

    if (isConditionalBranch(node.op)) {
        const bool taken = value != 0;
        ++result_.branchesResolved;
        if (perfect_)
            return;
        predictor_.updateConditional(node.origPc, taken);
        if (!block.predictionMade) {
            block.resolvedEarly = true;
            block.resolvedTaken = taken;
            return;
        }
        predictor_.recordOutcome(taken == block.predictedTaken);
        OBS_EMIT(.kind = obs::EventKind::Resolve, .cycle = cycle_,
                 .seq = seq, .bseq = block.bseq,
                 .imageId = block.imageId, .node = &node, .taken = taken,
                 .mispredict = taken != block.predictedTaken);
        if (taken != block.predictedTaken) {
            ++result_.mispredicts;
            ++result_.blockStats[block.imageId].mispredicts;
            const ImageBlock &ib = image_.block(block.imageId);
            const std::int32_t pc = taken ? node.target : ib.fallthroughPc;
            squashFrom(block.bseq + 1);
            redirectTo(mapPc(pc));
            if (prof_)
                pendingRedirectSeq_ = seq;
        }
        return;
    }

    if (node.op == Opcode::JR) {
        const auto actual = static_cast<std::int32_t>(value);
        if (perfect_)
            return;
        predictor_.updateIndirect(node.origPc, actual);
        if (!block.predictionMade) {
            block.resolvedEarly = true;
            block.resolvedTargetPc = actual;
            return;
        }
        OBS_EMIT(.kind = obs::EventKind::Resolve, .cycle = cycle_,
                 .seq = seq, .bseq = block.bseq,
                 .imageId = block.imageId, .node = &node,
                 .value = value,
                 .mispredict = block.predictedTargetPc >= 0 &&
                               block.predictedTargetPc != actual);
        if (block.predictedTargetPc == actual)
            return;
        if (block.predictedTargetPc >= 0) {
            // Predicted some other target: squash the wrong path.
            ++result_.mispredicts;
            ++result_.blockStats[block.imageId].mispredicts;
            squashFrom(block.bseq + 1);
            const auto it = image_.entryByPc.find(actual);
            if (it != image_.entryByPc.end()) {
                redirectTo(it->second);
                if (prof_)
                    pendingRedirectSeq_ = seq;
            } else {
                // Wrong-path JR computed a garbage target; stall fetch
                // until an older control node repairs the path.
                fetchIdle_ = true;
                fetchImageBlock_ = -1;
                nextFetchImageBlock_ = -1;
            }
        } else if (fetchIdle_ && jrWaitBseq_ == block.bseq) {
            // Fetch was waiting for this JR to resolve. A wrong-path JR
            // can compute a garbage target; stay idle in that case until
            // an older control node repairs the path.
            const auto it = image_.entryByPc.find(actual);
            if (it != image_.entryByPc.end()) {
                fetchIdle_ = false;
                redirectTo(it->second);
                if (prof_)
                    pendingRedirectSeq_ = seq;
            }
        }
        return;
    }
    // J / JAL: statically determined, nothing to verify.
}

/**
 * Retirement-time soundness cross-check (MD family): every pair the
 * static pass proved no-alias must have produced disjoint byte ranges in
 * this dynamic block instance. The block is fully done here, so every
 * memory node's effective address is known. Violations are counted and
 * the first few recorded for the harness to render as MD001/MD002
 * verify diagnostics.
 */
void
Engine::xcheckRetiringBlock(const BlockRec &front)
{
    const analyze::BlockDisambig &bd =
        disambig_->blocks[static_cast<std::size_t>(front.imageId)];
    const ImageBlock &ib = image_.block(front.imageId);
    const auto record = [&](const DisambigViolation &v) {
        ++result_.disambigViolations;
        if (result_.disambigViolationLog.size() < 16)
            result_.disambigViolationLog.push_back(v);
    };
    if (bd.nodeCount != ib.nodes.size() ||
        bd.issuePos.size() != ib.nodes.size()) {
        record({.imageId = front.imageId, .stale = true});
        return;
    }
    for (const std::uint32_t packed : bd.facts.noAliasPairs) {
        const auto a = static_cast<std::uint16_t>(packed >> 16);
        const auto b = static_cast<std::uint16_t>(packed & 0xffffu);
        const std::uint32_t posA = front.firstPos + bd.issuePos[a];
        const std::uint32_t posB = front.firstPos + bd.issuePos[b];
        if (metaAt(posA).nodeIdx != a || metaAt(posB).nodeIdx != b) {
            record({.imageId = front.imageId, .nodeA = a, .nodeB = b,
                    .stale = true});
            continue;
        }
        const std::uint32_t lenA = accessBytes(execAt(posA).node->op);
        const std::uint32_t lenB = accessBytes(execAt(posB).node->op);
        const std::uint32_t addrA = memAt(posA).addr;
        const std::uint32_t addrB = memAt(posB).addr;
        if (addrA < addrB + lenB && addrB < addrA + lenA)
            record({.imageId = front.imageId, .nodeA = a, .nodeB = b,
                    .addrA = addrA, .addrB = addrB,
                    .lenA = lenA, .lenB = lenB});
    }
    disambigCheckedPairs_ += bd.facts.noAliasPairs.size();
}

void
Engine::retireBlocks()
{
    while (headBlockPos_ != nextBlockPos_) {
        BlockRec &front = blockAt(headBlockPos_);
        if (!front.fullyIssued || front.doneCount != front.count)
            break;
        if (disambigXcheck_)
            xcheckRetiringBlock(front);

        // Commit stores in issue order (program order for aliasing pairs).
        auto &storeQueue = ws_.storeQueue;
        while (!storeQueue.empty() &&
               metaAt(storeQueue.front().pos).blockPos == headBlockPos_) {
            const NodeRef sref = storeQueue.front();
            MemRec &mr = memAt(sref.pos);
            fgp_assert(liveNode(sref) &&
                           stateAt(sref.pos) == NState::Done &&
                           mr.addrKnown && mr.dataKnown,
                       "retiring block with incomplete store");
            mem_.writeBytes(mr.addr, mr.data, mr.len);
            memsys_.commitStore(mr.addr, mr.len);
            ws_.storeIndex.erase(sref.seq);
            storeQueue.pop_front();
        }

        // Architectural register state (pos order == program order).
        for (std::uint32_t p = front.firstPos;
             p != front.firstPos + front.count; ++p) {
            const std::uint8_t dst = execAt(p).node->dstReg();
            if (dst != kRegNone && dst != kRegZero)
                committedRegs_[dst] = execAt(p).value;
        }

        if (opts_.predictFaultTargets) {
            const ImageBlock &ib = image_.block(front.imageId);
            if (ib.enlarged) {
                const auto it = faultChoice_.find(ib.entryPc);
                if (it != faultChoice_.end() &&
                    it->second.target != front.imageId &&
                    it->second.counter > 0)
                    --it->second.counter;
            }
        }
        OBS_EMIT(.kind = obs::EventKind::Retire, .cycle = cycle_,
                 .bseq = front.bseq, .imageId = front.imageId,
                 .count = front.count);
        BlockStat &bs = result_.blockStats[front.imageId];
        ++bs.retiredBlocks;
        bs.retiredNodes += front.count;
        if (prof_) {
            for (std::uint32_t p = front.firstPos;
                 p != front.firstPos + front.count; ++p)
                prof_->appendRetired(
                    seqAt(p), profAt(p),
                    static_cast<std::uint32_t>(front.imageId));
        }
        validCount_ -= static_cast<std::int64_t>(front.count);
        result_.retiredNodes += front.count;
        result_.blockSize.add(front.count);
        ++result_.committedBlocks;
        headPos_ = front.firstPos + front.count;
        ++headBlockPos_;
        sysWake_ = true; // the new window front may free a syscall
    }
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

void
Engine::refreshPending()
{
    // Deferred loads: re-attempt only those whose blocking node resolved
    // (or was squashed) since the last refresh. The retry list is
    // drained here — between completion processing and scheduling — so
    // wake-ups land on exactly the cycle the per-cycle poll would have
    // found them.
    if (!ws_.retryLoads.empty()) {
        auto &retry = ws_.retryScratch;
        retry.clear();
        retry.swap(ws_.retryLoads);
        for (const NodeRef &ref : retry) {
            if (!liveNode(ref) || stateAt(ref.pos) != NState::Ready)
                continue; // squashed (or already scheduled) meanwhile
            if (disambigFastEligible(ref.pos)) {
                // Proven independent: nothing to probe or park on, even
                // while an own-block store address is still unknown.
                ws_.readyMem.push(ref);
                continue;
            }
            ExecRec &ex = execAt(ref.pos);
            std::uint8_t scratch[4];
            std::uint64_t blocked_on = 0;
            std::uint32_t blocked_pos = 0;
            const std::uint32_t addr =
                effectiveAddress(*ex.node, ex.srcVal[0]);
            if (specRead(ref.seq, addr, accessBytes(ex.node->op),
                         scratch, nullptr, &blocked_on, &blocked_pos) ==
                MergeStatus::Ok) {
                ws_.readyMem.push(ref);
            } else {
                fgp_assert(blocked_on != 0,
                           "blocked load without a blocker");
                parkLoad(blocked_pos, blocked_on, ref.pos, addr);
            }
        }
    }

    // System calls become eligible when their block is the window's
    // oldest and every older node in the block is done. Only retirement,
    // completion or squash can change that, so skip the scan otherwise.
    if (!sysWake_)
        return;
    sysWake_ = false;
    auto &pendingSys = ws_.pendingSys;
    for (std::size_t i = 0; i < pendingSys.size();) {
        const NodeRef ref = pendingSys[i];
        if (!liveNode(ref) || stateAt(ref.pos) != NState::Ready) {
            pendingSys[i] = pendingSys.back();
            pendingSys.pop_back();
            continue;
        }
        const std::uint32_t bpos = metaAt(ref.pos).blockPos;
        bool eligible = headBlockPos_ != nextBlockPos_ &&
                        bpos == headBlockPos_;
        if (eligible) {
            const BlockRec &block = blockAt(bpos);
            for (std::uint32_t p = block.firstPos;
                 p != ref.pos && eligible; ++p)
                eligible = stateAt(p) == NState::Done;
        }
        if (eligible) {
            ws_.readyAlu.push(ref);
            pendingSys[i] = pendingSys.back();
            pendingSys.pop_back();
            continue;
        }
        ++i;
    }
}

void
Engine::scheduleDynamic()
{
    const IssueModel &issue = opts_.config.issue;
    auto &readyAlu = ws_.readyAlu;
    auto &readyMem = ws_.readyMem;

    if (issue.sequential) {
        // One node of any kind per cycle; oldest first.
        for (int budget = 1; budget > 0;) {
            NodeRef pick{};
            bool have = false;
            bool from_mem = false;
            while (!readyAlu.empty()) {
                const NodeRef top = readyAlu.top();
                if (liveNode(top) && stateAt(top.pos) == NState::Ready) {
                    pick = top;
                    have = true;
                    break;
                }
                readyAlu.pop();
            }
            while (!readyMem.empty()) {
                const NodeRef top = readyMem.top();
                if (liveNode(top) && stateAt(top.pos) == NState::Ready) {
                    if (!have || top.seq < pick.seq) {
                        pick = top;
                        have = true;
                        from_mem = true;
                    }
                    break;
                }
                readyMem.pop();
            }
            if (!have)
                break;
            (from_mem ? readyMem : readyAlu).pop();
            if (execAt(pick.pos).node->isLoad()) {
                if (!tryExecuteLoad(pick.pos))
                    continue; // parked on its blocker; next candidate
            } else {
                executeNode(pick.pos);
            }
            if (exited_)
                return;
            --budget;
        }
        return;
    }

    int mem_budget = issue.memSlots;
    while (mem_budget > 0 && !readyMem.empty()) {
        const NodeRef ref = readyMem.top();
        readyMem.pop();
        if (!liveNode(ref) || stateAt(ref.pos) != NState::Ready)
            continue;
        if (execAt(ref.pos).node->isLoad()) {
            if (!tryExecuteLoad(ref.pos))
                continue; // parked on its blocker
        } else {
            executeNode(ref.pos);
        }
        --mem_budget;
    }

    int alu_budget = issue.aluSlots;
    while (alu_budget > 0 && !readyAlu.empty()) {
        const NodeRef ref = readyAlu.top();
        readyAlu.pop();
        if (!liveNode(ref) || stateAt(ref.pos) != NState::Ready)
            continue;
        executeNode(ref.pos);
        if (exited_)
            return;
        --alu_budget;
    }
}

void
Engine::scheduleStaticWord()
{
    auto &wordQueue = ws_.wordQueue;
    while (!wordQueue.empty()) {
        const auto &wr = wordQueue.front();
        if (wr.blockPos >= headBlockPos_ && wr.blockPos < nextBlockPos_ &&
            blockAt(wr.blockPos).bseq == wr.bseq)
            break;
        wordQueue.pop_front();
    }
    if (wordQueue.empty())
        return;

    const auto wr = wordQueue.front();
    BlockRec &block = blockAt(wr.blockPos);
    const ImageBlock &ib = image_.block(block.imageId);
    const Word &word = ib.words[wr.wordIdx];
    // Words issue whole (one issueCycle call per word), so the word's
    // instances are the contiguous pos run starting at firstInst.
    fgp_assert(wr.firstInst + word.size() <= block.count,
               "word queued before its nodes issued");
    const std::uint32_t base = block.firstPos + wr.firstInst;

    // Full interlock: the word executes only when every node is ready.
    for (std::size_t k = 0; k < word.size(); ++k) {
        const std::uint32_t p = base + static_cast<std::uint32_t>(k);
        fgp_assert(metaAt(p).nodeIdx == word[k],
                   "static word slot mismatch");
        if (stateAt(p) != NState::Ready) {
            ++wordStallCycles_;
            return;
        }
        if (execAt(p).node->isSys()) {
            // Serialize: block must be oldest, all older nodes done.
            if (wr.blockPos != headBlockPos_)
                return;
            for (std::uint32_t q = block.firstPos; q != p; ++q)
                if (stateAt(q) != NState::Done)
                    return;
        }
    }

    // Execute stores and ALU work first so same-word loads can
    // disambiguate against them, then the loads.
    for (std::size_t k = 0; k < word.size(); ++k) {
        const std::uint32_t p = base + static_cast<std::uint32_t>(k);
        if (!execAt(p).node->isLoad()) {
            executeNode(p);
            if (exited_)
                return;
        }
    }
    for (std::size_t k = 0; k < word.size(); ++k) {
        const std::uint32_t p = base + static_cast<std::uint32_t>(k);
        if (execAt(p).node->isLoad()) {
            const bool ok = tryExecuteLoad(p);
            fgp_assert(ok, "in-order load failed to disambiguate");
        }
    }
    wordQueue.pop_front();
}

// ---------------------------------------------------------------------
// Fetch and issue
// ---------------------------------------------------------------------

std::int32_t
Engine::mapPc(std::int32_t pc)
{
    const std::int32_t primary = image_.blockAtPc(pc);
    if (opts_.predictFaultTargets) {
        const auto it = faultChoice_.find(pc);
        if (it != faultChoice_.end() && it->second.counter >= 2 &&
            it->second.target >= 0)
            return it->second.target;
    }
    return primary;
}

void
Engine::redirectTo(std::int32_t image_block)
{
    nextFetchImageBlock_ = image_block;
    fetchImageBlock_ = -1;
    fetchStall_ = opts_.redirectPenalty;
    fetchIdle_ = false;
}

void
Engine::decideNextFetch(BlockRec &block)
{
    block.predictionMade = true;

    if (perfect_) {
        if (traceIdx_ < trace_->size())
            nextFetchImageBlock_ = (*trace_)[traceIdx_++];
        else
            fetchIdle_ = true; // program exits inside a fetched block
        return;
    }

    const ImageBlock &ib = image_.block(block.imageId);
    const Node *term = ib.terminal();

    if (!term) {
        if (ib.fallthroughPc < 0)
            fetchIdle_ = true; // only an exit syscall can end this path
        else
            nextFetchImageBlock_ = mapPc(ib.fallthroughPc);
        return;
    }

    switch (term->op) {
      case Opcode::J:
        nextFetchImageBlock_ = mapPc(term->target);
        return;
      case Opcode::JAL:
        predictor_.pushReturn(term->origPc + 1);
        nextFetchImageBlock_ = mapPc(term->target);
        return;
      case Opcode::JR: {
        if (block.resolvedEarly) {
            block.predictedTargetPc = block.resolvedTargetPc;
            const auto it = image_.entryByPc.find(block.resolvedTargetPc);
            if (it == image_.entryByPc.end())
                fgp_fatal("JR to unmapped pc ", block.resolvedTargetPc);
            nextFetchImageBlock_ = it->second;
            return;
        }
        std::int32_t guess = -1;
        if (predictor_.rasEnabled())
            guess = predictor_.popReturn();
        if (guess < 0)
            guess = predictor_.predictIndirect(term->origPc);
        const auto it = guess >= 0 ? image_.entryByPc.find(guess)
                                   : image_.entryByPc.end();
        if (it != image_.entryByPc.end()) {
            block.predictedTargetPc = guess;
            nextFetchImageBlock_ = it->second;
        } else {
            block.predictedTargetPc = -1;
            fetchIdle_ = true;
            jrWaitBseq_ = block.bseq;
        }
        return;
      }
      default: { // conditional branch
        const bool taken =
            block.resolvedEarly
                ? block.resolvedTaken
                : predictor_.predictConditional(term->origPc, term->target);
        block.predictedTaken = taken;
        const std::int32_t pc = taken ? term->target : ib.fallthroughPc;
        nextFetchImageBlock_ = mapPc(pc);
        return;
      }
    }
}

void
Engine::issueCycle()
{
    if (fetchStall_ > 0) {
        --fetchStall_;
        ++fetchRedirectCycles_;
        return;
    }

    if (fetchImageBlock_ < 0) {
        if (fetchIdle_ || nextFetchImageBlock_ < 0) {
            ++fetchIdleCycles_;
            return;
        }
        if (static_cast<int>(nextBlockPos_ - headBlockPos_) >= windowCap_) {
            ++issueStallWindow_;
            return;
        }
        if (nextBlockPos_ - headBlockPos_ == ws_.blocks.size()) {
            ws_.growBlocks(headBlockPos_, nextBlockPos_);
            blockMask_ = ws_.blockMask();
        }
        BlockRec &nb = blockAt(nextBlockPos_);
        nb = BlockRec{};
        nb.bseq = bseqCounter_++;
        nb.imageId = nextFetchImageBlock_;
        nb.firstPos = nextPos_;
        nb.predictedTargetPc = -1;
        nb.resolvedTargetPc = -1;
        ++nextBlockPos_;
        fetchImageBlock_ = nextFetchImageBlock_;
        fetchBseq_ = nb.bseq;
        nextFetchImageBlock_ = -1;
    }

    // The block under fetch is always the window's youngest.
    const std::uint32_t bpos = nextBlockPos_ - 1;
    BlockRec &block = blockAt(bpos);
    fgp_assert(block.bseq == fetchBseq_, "fetch lost its block");
    const ImageBlock &ib = image_.block(block.imageId);
    fgp_assert(!ib.words.empty(), "image block ", ib.id,
               " has no issue words (image not translated?)");
    const Word &word = ib.words[block.issuedWords];

    for (std::uint16_t node_idx : word) {
        if (nextPos_ - headPos_ ==
            static_cast<std::uint32_t>(ws_.nodeSeq.size())) {
            ws_.growNodes(headPos_, nextPos_);
            nodeMask_ = ws_.nodeMask();
        }
        const std::uint32_t pos = nextPos_++;
        const std::uint64_t seq = seqCounter_++;
        const Node &node = ib.nodes[node_idx];

        ws_.nodeSeq[pos & nodeMask_] = seq;
        setState(pos, NState::Waiting);
        ExecRec &ex = execAt(pos);
        ex.node = &node;
        ex.value = 0;
        ex.unresolved = 0;
        ex.srcReadyMask = 0;
        memAt(pos) = MemRec{};
        metaAt(pos) = {bpos, node_idx};
        waitAt(pos) = {kNilIndex, kNilIndex};
        loadAt(pos) = {kNilIndex, kNilIndex};
        if (prof_) {
            profile::NodeProf &pr = profAt(pos);
            pr.issueCycle = static_cast<std::uint32_t>(cycle_);
            pr.readyCycle = pr.schedCycle = pr.completeCycle = 0;
            if (pendingRedirectSeq_) {
                // First node fetched after a redirect: its enabling
                // dependence is the resolving control node.
                pr.parentSeq = pendingRedirectSeq_;
                pr.edge = profile::EdgeKind::Branch;
                pendingRedirectSeq_ = 0;
            } else {
                pr.parentSeq = 0;
                pr.edge = profile::EdgeKind::Fetch;
            }
        }

        std::array<std::uint8_t, 5> srcs;
        ex.nSrc = static_cast<std::uint8_t>(node.srcRegs(srcs));
        for (int slot = 0; slot < ex.nSrc; ++slot) {
            const std::uint8_t reg = srcs[slot];
            if (reg == kRegNone || reg == kRegZero) {
                ex.srcVal[slot] = 0;
                ex.srcReadyMask |= 1u << slot;
                continue;
            }
            const RenameEntry &entry = rename_[reg];
            if (entry.ready) {
                ex.srcVal[slot] = entry.value;
                ex.srcReadyMask |= 1u << slot;
            } else {
                ++ex.unresolved;
                chainAppend(waitAt(entry.tagPos),
                            {seq, static_cast<std::uint64_t>(slot), pos});
            }
        }

        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst != kRegZero)
            rename_[dst] = {false, 0, seq, pos};

        if (node.isStore()) {
            ws_.storeQueue.push_back({seq, pos});
            ws_.unknownStoreAddrs.push_back({seq, pos});
            if (opts_.conservativeLoads)
                ws_.unknownStoreData.push_back({seq, pos});
            tryStoreAgen(pos);
        }
        if (node.isSys())
            ws_.pendingSyscallSeqs.push_back({seq, pos});

        ++block.count;
        ++result_.issuedNodes;
        ++validCount_;
        ++activeCount_;
        if (ex.unresolved == 0)
            onDataReady(pos);
    }

    OBS_EMIT(.kind = obs::EventKind::Issue, .cycle = cycle_,
             .bseq = block.bseq, .imageId = block.imageId, .block = &ib,
             .wordIdx = static_cast<std::int32_t>(block.issuedWords));
    const std::size_t width =
        static_cast<std::size_t>(opts_.config.issue.width());
    if (word.size() < width)
        shortWordSlots_ += width - word.size();
    ++result_.blockStats[block.imageId].issuedWords;
    ++issueCycles_;
    if (isStatic_)
        ws_.wordQueue.push_back(
            {block.bseq, bpos, block.issuedWords,
             block.count - static_cast<std::uint32_t>(word.size())});

    if (++block.issuedWords == ib.words.size()) {
        block.fullyIssued = true;
        decideNextFetch(block);
        fetchImageBlock_ = -1;
    }
}

// ---------------------------------------------------------------------
// Squash / repair
// ---------------------------------------------------------------------

void
Engine::squashFrom(std::uint64_t bseq_inclusive)
{
    if (headBlockPos_ == nextBlockPos_ ||
        blockAt(nextBlockPos_ - 1).bseq < bseq_inclusive) {
        // Nothing younger is in flight; still cancel any in-progress fetch.
        fetchImageBlock_ = -1;
        rebuildRenameMap();
        return;
    }

    // Pop victim blocks, youngest first; the last (oldest) victim sets
    // the pos/seq boundary for the suffix repairs below.
    const std::uint32_t oldNextPos = nextPos_;
    std::uint32_t boundaryPos = nextPos_;
    std::uint64_t seqBoundary = 0;
    while (headBlockPos_ != nextBlockPos_ &&
           blockAt(nextBlockPos_ - 1).bseq >= bseq_inclusive) {
        const BlockRec &victim = blockAt(nextBlockPos_ - 1);
        fgp_assert(victim.count, "squashing an empty block");
        OBS_EMIT(.kind = obs::EventKind::Squash, .cycle = cycle_,
                 .bseq = victim.bseq, .imageId = victim.imageId,
                 .count = victim.count);
        BlockStat &bs = result_.blockStats[victim.imageId];
        ++bs.squashedBlocks;
        bs.squashedNodes += victim.count;
        for (std::uint32_t p = victim.firstPos;
             p != victim.firstPos + victim.count; ++p) {
            --validCount_;
            const NState s = stateAt(p);
            if (s == NState::Waiting || s == NState::Ready)
                --activeCount_;
            if (s == NState::Ready)
                --readyCount_;
        }
        ++result_.squashedBlocks;
        boundaryPos = victim.firstPos;
        seqBoundary = seqAt(victim.firstPos);
        --nextBlockPos_;
    }
    nextPos_ = boundaryPos;

    auto &storeQueue = ws_.storeQueue;
    while (!storeQueue.empty() && storeQueue.back().seq >= seqBoundary)
        storeQueue.pop_back();
    ws_.storeIndex.squash(seqBoundary);
    while (!ws_.unknownStoreAddrs.empty() &&
           ws_.unknownStoreAddrs.back().seq >= seqBoundary)
        ws_.unknownStoreAddrs.pop_back();
    while (!ws_.pendingSyscallSeqs.empty() &&
           ws_.pendingSyscallSeqs.back().seq >= seqBoundary)
        ws_.pendingSyscallSeqs.pop_back();
    while (!ws_.unknownStoreData.empty() &&
           ws_.unknownStoreData.back().seq >= seqBoundary)
        ws_.unknownStoreData.pop_back();
    while (!ws_.wordQueue.empty() &&
           ws_.wordQueue.back().bseq >= bseq_inclusive)
        ws_.wordQueue.pop_back();

    // Squashed nodes' chains: wait chains die with their consumers
    // (every waiter on a squashed producer is younger, hence squashed
    // too); load chains re-attempt every parked load, oldest blocker
    // first — surviving loads re-park on a live blocker at the next
    // refresh. Ascending pos is ascending blocker seq, matching the old
    // ordered-map drain.
    for (std::uint32_t p = boundaryPos; p != oldNextPos; ++p) {
        releaseChain(waitAt(p));
        ChainRef &lc = loadAt(p);
        std::uint32_t idx = lc.head;
        lc.head = lc.tail = kNilIndex;
        while (idx != kNilIndex) {
            const ChainItem item = ws_.chains.at(idx);
            const std::uint32_t nxt = ws_.chains.next(idx);
            ws_.chains.release(idx);
            --parkedLoads_;
            ws_.retryLoads.push_back({item.seq, item.pos});
            idx = nxt;
        }
    }
    sysWake_ = true;

    fetchImageBlock_ = -1; // any in-progress fetch was on the wrong path
    rebuildRenameMap();
}

void
Engine::rebuildRenameMap()
{
    for (std::uint8_t r = 0; r < kNumRegs; ++r)
        rename_[r] = {true, committedRegs_[r], 0, 0};
    for (std::uint32_t p = headPos_; p != nextPos_; ++p) {
        const std::uint8_t dst = execAt(p).node->dstReg();
        if (dst == kRegNone || dst == kRegZero)
            continue;
        if (stateAt(p) == NState::Done)
            rename_[dst] = {true, execAt(p).value, 0, 0};
        else
            rename_[dst] = {false, 0, seqAt(p), p};
    }
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

EngineResult
Engine::run()
{
    validateImage(image_);
    result_.issueWidth = opts_.config.issue.width();
    result_.blockStats.resize(image_.blocks.size());
    for (std::size_t i = 0; i < image_.blocks.size(); ++i)
        result_.blockStats[i].entryPc = image_.blocks[i].entryPc;
    const Program &prog = *image_.prog;
    if (!prog.data.empty())
        mem_.writeBytes(kDataBase, prog.data.data(), prog.data.size());
    os_.setInitialBrk(prog.initialBrk());
    committedRegs_[kRegSp] = kStackTop;
    rebuildRenameMap();

    if (perfect_) {
        fgp_assert(!trace_->empty(), "empty perfect trace");
        nextFetchImageBlock_ = (*trace_)[0];
        traceIdx_ = 1;
    } else {
        nextFetchImageBlock_ = image_.entryBlock;
    }

    std::uint64_t last_progress = 0;
    std::uint64_t progress_marker = 0;
    const std::uint64_t alloc_start = hook_ ? hook_() : 0;

    for (cycle_ = 0; cycle_ < opts_.maxCycles; ++cycle_) {
        processCompletions();
        if (exited_)
            break;
        retireBlocks();
        if (!isStatic_)
            refreshPending();
        if (isStatic_)
            scheduleStaticWord();
        else
            scheduleDynamic();
        if (exited_)
            break;
        issueCycle();
        result_.windowOccupancy.add(nextBlockPos_ - headBlockPos_);
        result_.peakLiveNodes =
            std::max<std::uint64_t>(result_.peakLiveNodes,
                                    nextPos_ - headPos_);
        result_.validNodes.add(static_cast<std::uint64_t>(validCount_));
        result_.activeNodes.add(static_cast<std::uint64_t>(activeCount_));
        result_.readyNodes.add(static_cast<std::uint64_t>(readyCount_));

        // Waiting-node attribution (same sampling point as the window
        // histograms). Ready nodes split into memory-parked loads,
        // serializing syscalls, and genuinely slot-starved work; the
        // parked count can transiently include loads squashed while
        // parked, so the FU-busy remainder is clamped at zero.
        StallBreakdown &st = result_.stalls;
        st.operandWaitNodeCycles +=
            static_cast<std::uint64_t>(activeCount_ - readyCount_);
        const std::uint64_t sys_waiting = ws_.pendingSys.size();
        st.memoryWaitNodeCycles += parkedLoads_;
        st.serializeWaitNodeCycles += sys_waiting;
        const std::uint64_t ready = static_cast<std::uint64_t>(readyCount_);
        st.fuBusyNodeCycles += ready > parkedLoads_ + sys_waiting
                                   ? ready - parkedLoads_ - sys_waiting
                                   : 0;

        if (prof_) {
            prof_->noteCycle(ready, nextPos_ - headPos_,
                             ws_.storeQueue.size(),
                             static_cast<std::uint64_t>(
                                 memsys_.writeBufferLines()));
            if (prof_->windowBoundary(cycle_))
                prof_->closeWindow(cycle_ + 1, profileCounters(),
                                   result_.blockStats, false);
        }

        // Watchdog: the machine must make progress (issue, execute or
        // retire something) regularly or the model has deadlocked.
        const std::uint64_t marker = result_.issuedNodes +
                                     result_.executedNodes +
                                     result_.retiredNodes;
        if (marker != progress_marker) {
            progress_marker = marker;
            last_progress = cycle_;
        } else if (cycle_ - last_progress > 100000) {
            fgp_panic("engine deadlock: no progress for 100000 cycles "
                      "(config ", opts_.config.name(), ")");
        }
    }
    if (!exited_)
        fgp_fatal("cycle budget exceeded (", opts_.maxCycles, ") on config ",
                  opts_.config.name());

    // Final, possibly partial window (the exit cycle's slots land here
    // as drain, closing the per-window books against the global ones).
    if (prof_)
        prof_->closeWindow(result_.cycles, profileCounters(),
                           result_.blockStats, true);

    if (hook_) {
        result_.allocSampled = true;
        result_.allocCycleLoop =
            hook_() - alloc_start - result_.allocSyscall;
    }
    result_.arenaNodeSlots = ws_.nodeSeq.size();
    result_.arenaBlockSlots = ws_.blocks.size();
    result_.arenaChainSlots = ws_.chains.size();

    predictor_.exportStats(result_.stats, "bpred.");
    memsys_.exportStats(result_.stats, "mem.");
    result_.stats.set("window_cap", static_cast<std::uint64_t>(windowCap_));
    result_.stats.set("issue_cycles", issueCycles_);
    // Match the incremental-add behaviour: a counter that never fired
    // leaves no key behind.
    if (fetchRedirectCycles_)
        result_.stats.set("fetch_redirect_cycles", fetchRedirectCycles_);
    if (fetchIdleCycles_)
        result_.stats.set("fetch_idle_cycles", fetchIdleCycles_);
    if (issueStallWindow_)
        result_.stats.set("issue_stall_window", issueStallWindow_);
    if (wordStallCycles_)
        result_.stats.set("word_stall_cycles", wordStallCycles_);
    result_.disambigFastLoads = disambigFastLoads_;
    result_.disambigProbesEliminated = disambigProbesEliminated_;
    result_.disambigCheckedPairs = disambigCheckedPairs_;
    if (disambigFastLoads_) {
        result_.stats.set("disambig.fast_loads", disambigFastLoads_);
        result_.stats.set("disambig.probes_eliminated",
                          disambigProbesEliminated_);
    }
    if (disambigCheckedPairs_)
        result_.stats.set("disambig.checked_pairs", disambigCheckedPairs_);
    if (result_.disambigViolations)
        result_.stats.set("disambig.violations", result_.disambigViolations);
    if (issueCycles_) {
        result_.stats.setReal(
            "issue_slot_utilization",
            static_cast<double>(result_.issuedNodes) /
                (static_cast<double>(issueCycles_) *
                 opts_.config.issue.width()));
    }

    // Close the issue-slot books: every slot of every cycle is either an
    // issued node or attributed to exactly one cause. The remainder is
    // the exit cycle's drained slots (issue never runs on the cycle the
    // program exits).
    {
        StallBreakdown &st = result_.stalls;
        const std::uint64_t width =
            static_cast<std::uint64_t>(result_.issueWidth);
        st.fetchRedirectSlots = fetchRedirectCycles_ * width;
        st.fetchIdleSlots = fetchIdleCycles_ * width;
        st.windowFullSlots = issueStallWindow_ * width;
        st.shortWordSlots = shortWordSlots_;
        const std::uint64_t total = result_.cycles * width;
        const std::uint64_t accounted =
            result_.issuedNodes + st.fetchRedirectSlots +
            st.fetchIdleSlots + st.windowFullSlots + st.shortWordSlots;
        fgp_assert(accounted <= total,
                   "stall accounting overran the issue-slot budget");
        st.drainSlots = total - accounted;

        // Mirror into the named-stats registry (nonzero keys only, like
        // the other issue counters).
        const auto put = [&](const char *name, std::uint64_t v) {
            if (v)
                result_.stats.set(name, v);
        };
        put("stall.slots_fetch_redirect", st.fetchRedirectSlots);
        put("stall.slots_fetch_idle", st.fetchIdleSlots);
        put("stall.slots_window_full", st.windowFullSlots);
        put("stall.slots_short_word", st.shortWordSlots);
        put("stall.slots_drain", st.drainSlots);
        put("stall.node_cycles_operand_wait", st.operandWaitNodeCycles);
        put("stall.node_cycles_memory_wait", st.memoryWaitNodeCycles);
        put("stall.node_cycles_serialize_wait", st.serializeWaitNodeCycles);
        put("stall.node_cycles_fu_busy", st.fuBusyNodeCycles);
    }

    if (bus_)
        bus_->finish();
    return result_;
}

#undef OBS_EMIT

} // namespace

void
setAllocHook(std::uint64_t (*hook)())
{
    g_allocHook.store(hook, std::memory_order_relaxed);
}

EngineResult
simulate(const CodeImage &image, SimOS &os, const EngineOptions &opts)
{
    // A caller-provided workspace pools every arena across calls; the
    // private fallback costs one construction but behaves identically.
    std::unique_ptr<EngineWorkspace> local;
    EngineWorkspace *ws = opts.workspace;
    if (!ws) {
        local = std::make_unique<EngineWorkspace>();
        ws = local.get();
    }
    Engine engine{image, os, opts, *ws};
    EngineResult result = engine.run();

    // Fold the finished run into the sweep-level registry (one batch of
    // counter adds per simulation; the cycle loop stays untouched).
    if (opts.metrics && opts.metrics->enabled()) {
        metrics::Registry &m = *opts.metrics;
        m.add("engine.sims", 1);
        m.add("engine.cycles", result.cycles);
        m.add("engine.retired_nodes", result.retiredNodes);
        m.add("engine.executed_nodes", result.executedNodes);
        m.add("engine.issued_nodes", result.issuedNodes);
        m.add("engine.committed_blocks", result.committedBlocks);
        m.add("engine.squashed_blocks", result.squashedBlocks);
        m.add("engine.branches_resolved", result.branchesResolved);
        m.add("engine.mispredicts", result.mispredicts);
        m.add("engine.faults_fired", result.faultsFired);
        m.add("engine.stall_slots", result.stalls.totalSlots());
        if (result.allocSampled) {
            m.add("engine.alloc.sampled_sims", 1);
            m.add("engine.alloc.cycle_loop", result.allocCycleLoop);
            m.add("engine.alloc.syscall", result.allocSyscall);
        }
        if (result.disambigFastLoads || result.disambigCheckedPairs) {
            m.add("engine.disambig.fast_loads", result.disambigFastLoads);
            m.add("engine.disambig.probes_eliminated",
                  result.disambigProbesEliminated);
            m.add("engine.disambig.checked_pairs",
                  result.disambigCheckedPairs);
            m.add("engine.disambig.violations", result.disambigViolations);
        }
        if (opts.profile) {
            m.add("profile.sims", 1);
            m.add("profile.windows", opts.profile->windows().size());
            m.add("profile.retired_log_nodes",
                  opts.profile->retiredLog().size());
        }
        // Pooled-arena occupancy (last writer wins: capacities are
        // monotone per workspace, so the final sim reports the
        // high-water marks).
        m.setGauge("engine.arena.node_slots",
                   static_cast<double>(result.arenaNodeSlots));
        m.setGauge("engine.arena.block_slots",
                   static_cast<double>(result.arenaBlockSlots));
        m.setGauge("engine.arena.chain_slots",
                   static_cast<double>(result.arenaChainSlots));
    }
    return result;
}

} // namespace fgp
