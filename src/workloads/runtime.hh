/**
 * @file
 * Shared micro-assembly runtime appended to every benchmark: buffered
 * output, whole-input readers, string helpers and a bump allocator.
 *
 * Register conventions used by the benchmarks:
 *   a0-a3 (r4-r7)  arguments, v0 (r2) result, v1 (r3) second result;
 *   r8-r19         caller-saved temporaries (runtime may clobber);
 *   r20-r27        benchmark-owned (runtime never touches);
 *   sp/ra          stack pointer / link register.
 */

#ifndef FGP_WORKLOADS_RUNTIME_HH
#define FGP_WORKLOADS_RUNTIME_HH

namespace fgp {

/** Assembly text of the runtime (data segment + helper routines). */
extern const char *const kRuntimeAsm;

} // namespace fgp

#endif // FGP_WORKLOADS_RUNTIME_HH
