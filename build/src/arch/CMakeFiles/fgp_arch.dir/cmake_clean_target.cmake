file(REMOVE_RECURSE
  "libfgp_arch.a"
)
