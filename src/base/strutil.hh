/**
 * @file
 * Small string helpers shared by the assembler, the harness and the report
 * writers.
 */

#ifndef FGP_BASE_STRUTIL_HH
#define FGP_BASE_STRUTIL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fgp {

/** Split @p text on @p sep (single character); keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Case-sensitive suffix check. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** Upper-case an ASCII string. */
std::string toUpper(std::string_view text);

/**
 * Parse a signed integer with optional 0x/0b prefix and leading minus.
 * Returns nullopt on malformed input or overflow of int64.
 */
std::optional<std::int64_t> parseInt(std::string_view text);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items, std::string_view sep);

} // namespace fgp

#endif // FGP_BASE_STRUTIL_HH
