/**
 * @file
 * Static memory disambiguation over the translated tld IR.
 *
 * For every same-block load/store and store/store pair the pass assigns
 * one of three lattice points:
 *
 *  - **no-alias**: the two accesses provably touch disjoint bytes on
 *    every execution of the block (same canonical symbolic base,
 *    non-overlapping constant offset ranges);
 *  - **must-alias**: the two accesses provably touch exactly the same
 *    bytes (equal canonical address expressions, equal widths);
 *  - **may-alias**: neither is provable — the pair stays in the
 *    hardware's run-time disambiguator.
 *
 * Addresses are evaluated with the verifier's hash-consed symbolic
 * algebra (verify/symexpr.hh), including scratch-register value tracking
 * and store-to-load forwarding through the block's store log, so the
 * facts are consistent with what the equivalence checker proves about
 * the same code. Enlarged blocks are single composed node lists, so the
 * same-block analysis classifies cross-companion (cross-junction) pairs
 * of a bbe chain with no extra machinery.
 *
 * Consumers:
 *  - the tld static scheduler (TranslateOptions::disambigHook) drops
 *    ordering edges for proven no-alias pairs, hoisting loads above
 *    independent stores — behind FGP_STATIC_DISAMBIG, default off;
 *  - the engine skips store-queue probes for loads proven independent of
 *    every store in their block (disambig.* stats);
 *  - a debug-build dynamic cross-check (FGP_DISAMBIG_XCHECK) asserts at
 *    block retirement that no statically-proven no-alias pair ever
 *    overlaps at runtime, reporting violations through the verify::diag
 *    registry (MD family).
 */

#ifndef FGP_ANALYZE_DISAMBIG_HH
#define FGP_ANALYZE_DISAMBIG_HH

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "ir/image.hh"
#include "tld/depgraph.hh"

namespace fgp::analyze {

/** Classification lattice for one memory-access pair. */
enum class AliasClass : std::uint8_t {
    NoAlias,   ///< provably disjoint bytes
    MustAlias, ///< provably identical bytes
    MayAlias,  ///< unprovable either way
};

std::string_view aliasClassName(AliasClass cls);

/** One classified pair; first < second in translated node order. */
struct AliasPair
{
    std::uint16_t first;
    std::uint16_t second;
    AliasClass cls;
    bool storeStore; ///< store/store (else load/store)
};

/** Disambiguation summary of one block. */
struct BlockDisambig
{
    std::int32_t block = -1;
    std::int32_t entryPc = -1;
    bool enlarged = false;
    bool companion = false;

    /** Node count at analysis time (staleness cross-check, MD002). */
    std::size_t nodeCount = 0;
    std::size_t loads = 0;
    std::size_t stores = 0;

    /** Every classified pair, in (first, second) order. */
    std::vector<AliasPair> pairs;
    std::size_t noAlias = 0;
    std::size_t mustAlias = 0;
    std::size_t mayAlias = 0;

    /** No-alias pairs in the scheduler's packed form. */
    MemDepFacts facts;

    /**
     * loadIndependent[i] — node i is a load proven no-alias against
     * *every* store of the block (order-free, so the claim holds for any
     * legal schedule). The engine reads such loads straight from memory
     * once all older blocks' stores have retired. Always all-false for
     * blocks containing a system call.
     */
    std::vector<std::uint8_t> loadIndependent;
    std::size_t independentLoads = 0;

    /**
     * Flattened issue position of each node (words order), or empty for
     * an unpacked block. Lets the engine map a node index to its slot in
     * the retirement window.
     */
    std::vector<std::uint16_t> issuePos;

    double
    mayDensity() const
    {
        return pairs.empty() ? 0.0
                             : static_cast<double>(mayAlias) /
                                   static_cast<double>(pairs.size());
    }
};

/** Whole-image disambiguation summary. */
struct DisambigImage
{
    std::vector<BlockDisambig> blocks; ///< indexed by block id

    std::size_t pairsTotal = 0;
    std::size_t noAliasTotal = 0;
    std::size_t mustAliasTotal = 0;
    std::size_t mayAliasTotal = 0;
    std::size_t independentLoadsTotal = 0;
    /** No-alias pairs inside enlarged blocks (cross-companion facts). */
    std::size_t enlargedNoAlias = 0;
};

/**
 * Classify one block's memory pairs. Usable before packing (the
 * translate hook calls it per block, pre-scheduling); issuePos is filled
 * only when the block already has words.
 */
BlockDisambig disambigBlock(const ImageBlock &block);

/** Classify every block of @p image. */
DisambigImage disambigImage(const CodeImage &image);

/**
 * Whether the scheduler and engine consume no-alias facts
 * (FGP_STATIC_DISAMBIG=1; default off — schedules stay bit-identical).
 */
bool staticDisambigEnabled();

/**
 * Whether the retirement-time soundness cross-check runs
 * (FGP_DISAMBIG_XCHECK override; default on in debug builds, off in
 * release).
 */
bool disambigXcheckEnabled();

/**
 * Adapter for TranslateOptions::disambigHook: computes per-block
 * no-alias facts for the static scheduler.
 */
std::function<MemDepFacts(const ImageBlock &)> disambigSchedulingHook();

} // namespace fgp::analyze

#endif // FGP_ANALYZE_DISAMBIG_HH
