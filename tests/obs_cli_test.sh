#!/bin/sh
# End-to-end test of the observability surface of the fgpsim CLI:
# trace --out, sim --json (schema-validated by tools/check_bench.sh),
# the report subcommand, and the JSONL / Chrome trace exporters.
set -e
FGPSIM="$1"
CHECK_BENCH="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

CFG=dyn4/8A/single

# trace honors --out: the trace lands in the file and the program's
# stdout appears on the command's stdout (same bytes as the VM run).
"$FGPSIM" run grep > "$TMP/vm.out" 2> /dev/null
"$FGPSIM" trace grep --config "$CFG" --out "$TMP/trace.txt" \
    > "$TMP/prog.out" 2> /dev/null
cmp "$TMP/vm.out" "$TMP/prog.out"
grep -q "retire" "$TMP/trace.txt"
grep -q "issue" "$TMP/trace.txt"
grep -q "exec" "$TMP/trace.txt"

# Without --out the trace still streams to stdout.
"$FGPSIM" trace grep --config "$CFG" 2> /dev/null | grep -q "retire"

# sim --json emits a pure JSON results dump that passes schema
# validation, including the stall breakdown identity.
"$FGPSIM" sim grep --config "$CFG" --json > "$TMP/sim.json" 2> /dev/null
sh "$CHECK_BENCH" --validate-sim "$TMP/sim.json"
grep -q '"short_word"' "$TMP/sim.json"
grep -q '"operand_wait"' "$TMP/sim.json"
grep -q '"blocks"' "$TMP/sim.json"

# report renders the per-block top-N table and the stall tables.
"$FGPSIM" report grep --config "$CFG" --top 3 > "$TMP/report.txt" 2> /dev/null
grep -q "Issue slots" "$TMP/report.txt"
grep -q "short word" "$TMP/report.txt"
grep -q "Waiting node-cycles" "$TMP/report.txt"
grep -q "static blocks by retired nodes" "$TMP/report.txt"
# --top N limits the block table (header + separator + at most 3 rows
# after the "Top ..." line).
rows=$(sed -n '/static blocks by retired nodes/,$p' "$TMP/report.txt" \
       | tail -n +4 | grep -c . || true)
test "$rows" -le 3

# report --json is the same dump as sim --json.
"$FGPSIM" report grep --config "$CFG" --json > "$TMP/report.json" 2> /dev/null
sh "$CHECK_BENCH" --validate-sim "$TMP/report.json"

# JSONL event stream: one object per line, kind and cycle on each.
"$FGPSIM" sim grep --config "$CFG" --events "$TMP/events.jsonl" \
    > /dev/null 2> /dev/null
test -s "$TMP/events.jsonl"
bad=$(grep -vc '^{"cycle":[0-9]*,"kind":"[a-z_]*".*}$' "$TMP/events.jsonl" || true)
test "$bad" -eq 0
grep -q '"kind":"retire"' "$TMP/events.jsonl"

# Chrome trace: document shape loadable by Perfetto / chrome://tracing.
"$FGPSIM" sim grep --config "$CFG" --chrome "$TMP/chrome.json" \
    > /dev/null 2> /dev/null
head -c 20 "$TMP/chrome.json" | grep -q '{"displayTimeUnit"'
grep -q '"traceEvents"' "$TMP/chrome.json"
tail -c 4 "$TMP/chrome.json" | grep -q ']}'
# When python3 is around, hold the exporters to real JSON parsing.
if command -v python3 > /dev/null 2>&1; then
    python3 - "$TMP/sim.json" "$TMP/chrome.json" "$TMP/events.jsonl" <<'PY'
import json, sys
json.load(open(sys.argv[1]))
trace = json.load(open(sys.argv[2]))
assert trace["traceEvents"], "empty Chrome trace"
for line in open(sys.argv[3]):
    json.loads(line)
PY
fi

# Bench-record validation modes.
cat > "$TMP/bench.json" <<'EOF'
{
  "bench": "perf_selfcheck",
  "jobs": 1,
  "scale": 1.0000,
  "sims": 10,
  "wall_seconds": 1.0,
  "sims_per_sec": 10.0,
  "sim_cycles": 1000,
  "host_ns_per_sim_cycle": 100.0
}
EOF
sh "$CHECK_BENCH" --validate-bench "$TMP/bench.json"
printf '{\n "bench": "x"\n}\n' > "$TMP/bad.json"
if sh "$CHECK_BENCH" --validate-bench "$TMP/bad.json" 2> /dev/null; then
    echo "expected failure on incomplete bench record" >&2
    exit 1
fi

echo "obs cli test ok"
