/**
 * @file
 * EventBus — fan-out of engine SimEvents to pluggable sinks.
 *
 * Header-only so the engine can emit without a library dependency on the
 * sink implementations. The hot-path contract is zero cost when disabled:
 * the engine guards every emission with a null/empty check, so a run
 * without a bus (or with no sinks attached) performs no event work at all.
 */

#ifndef FGP_OBS_BUS_HH
#define FGP_OBS_BUS_HH

#include <vector>

#include "obs/event.hh"

namespace fgp::obs {

/**
 * Receives every event published on a bus. Implementations must not
 * retain the SimEvent (it borrows pointers into the simulated image);
 * copy what they need. Sinks are engine observers only — they must not
 * mutate simulation state, and the engine's schedule is identical with
 * and without sinks attached (asserted by tests/obs_test.cc).
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    virtual void onEvent(const SimEvent &event) = 0;

    /** Called once when the simulation finishes (flush point). */
    virtual void onRunEnd() {}
};

/** Non-owning collection of sinks; the caller keeps sinks alive. */
class EventBus
{
  public:
    void addSink(EventSink *sink) { sinks_.push_back(sink); }

    bool enabled() const { return !sinks_.empty(); }

    void
    emit(const SimEvent &event)
    {
        for (EventSink *sink : sinks_)
            sink->onEvent(event);
    }

    void
    finish()
    {
        for (EventSink *sink : sinks_)
            sink->onRunEnd();
    }

  private:
    std::vector<EventSink *> sinks_;
};

} // namespace fgp::obs

#endif // FGP_OBS_BUS_HH
