#include "ir/program.hh"

#include "base/logging.hh"

namespace fgp {

void
validateProgram(const Program &prog)
{
    if (prog.instrs.empty())
        fgp_fatal("program has no instructions");
    if (prog.entry < 0 ||
        prog.entry >= static_cast<std::int32_t>(prog.instrs.size()))
        fgp_fatal("entry point out of range: ", prog.entry);

    const auto num_instrs = static_cast<std::int32_t>(prog.instrs.size());
    for (std::int32_t pc = 0; pc < num_instrs; ++pc) {
        const Node &node = prog.instrs[pc];
        const auto &info = opcodeInfo(node.op);

        if (node.isFault())
            fgp_fatal("instr ", pc, ": fault nodes are not valid in source "
                      "programs");

        auto check_reg = [&](std::uint8_t reg, const char *what) {
            if (reg == kRegNone)
                return;
            if (reg >= kNumArchRegs)
                fgp_fatal("instr ", pc, " (", info.mnemonic, "): ", what,
                          " register r", static_cast<int>(reg),
                          " outside architectural file");
        };

        std::array<std::uint8_t, 5> srcs;
        const int nsrc = node.srcRegs(srcs);
        for (int i = 0; i < nsrc; ++i)
            check_reg(srcs[i], "source");
        check_reg(node.dstReg(), "destination");

        switch (info.form) {
          case OperandForm::Branch:
          case OperandForm::Jump:
          case OperandForm::JumpLink:
            if (node.target < 0 || node.target >= num_instrs)
                fgp_fatal("instr ", pc, " (", info.mnemonic,
                          "): control target ", node.target, " out of range");
            break;
          default:
            break;
        }
    }
}

} // namespace fgp
