#include "tld/depgraph.hh"

#include <algorithm>

#include "base/logging.hh"
#include "vm/exec.hh"

namespace fgp {

bool
mayAlias(const Node &a, const Node &b, bool same_base_value)
{
    fgp_assert(a.isMem() && b.isMem(), "mayAlias on non-memory nodes");
    if (!same_base_value)
        return true; // different base values: assume the worst
    const auto len_a = static_cast<std::int32_t>(accessBytes(a.op));
    const auto len_b = static_cast<std::int32_t>(accessBytes(b.op));
    return a.imm < b.imm + len_b && b.imm < a.imm + len_a;
}

DepGraph
buildDepGraph(const ImageBlock &block, bool with_antideps,
              const MemDepFacts *facts)
{
    const std::size_t n = block.nodes.size();
    DepGraph graph;
    graph.preds.resize(n);
    graph.succs.resize(n);

    auto add_edge = [&](std::uint16_t from, std::uint16_t to) {
        auto &preds = graph.preds[to];
        if (std::find(preds.begin(), preds.end(), from) == preds.end()) {
            preds.push_back(from);
            graph.succs[from].push_back(to);
        }
    };

    // Register base-value versions for memory disambiguation.
    std::vector<std::int32_t> version_at(n, 0);
    std::int32_t version[kNumRegs];
    std::fill(std::begin(version), std::end(version), -1);

    // Last writer / readers per register.
    std::int32_t last_def[kNumRegs];
    std::fill(std::begin(last_def), std::end(last_def), -1);
    std::vector<std::vector<std::uint16_t>> readers(kNumRegs);

    std::vector<std::uint16_t> mem_nodes;
    std::int32_t last_sys = -1;

    for (std::size_t i = 0; i < n; ++i) {
        const Node &node = block.nodes[i];
        const auto idx = static_cast<std::uint16_t>(i);

        // RAW edges.
        std::array<std::uint8_t, 5> srcs;
        const int nsrc = node.srcRegs(srcs);
        for (int s = 0; s < nsrc; ++s) {
            const std::uint8_t reg = srcs[s];
            if (reg == kRegNone || reg == kRegZero)
                continue;
            if (last_def[reg] >= 0)
                add_edge(static_cast<std::uint16_t>(last_def[reg]), idx);
            readers[reg].push_back(idx);
        }

        // Memory ordering edges.
        if (node.isMem()) {
            const std::int32_t base_version =
                node.rs1 == kRegZero ? -2 : version[node.rs1];
            for (std::uint16_t m : mem_nodes) {
                const Node &other = block.nodes[m];
                if (node.isLoad() && other.isLoad())
                    continue; // loads commute
                const std::int32_t other_version =
                    other.rs1 == kRegZero ? -2 : version_at[m];
                const bool same_base =
                    other.rs1 == node.rs1 && other_version == base_version;
                if (facts && facts->independent(m, idx))
                    continue; // proven no-alias: ordering unnecessary
                if (mayAlias(node, other, same_base))
                    add_edge(m, idx);
            }
            version_at[i] = base_version;
            mem_nodes.push_back(idx);
        }

        // System calls are barriers in both directions.
        if (node.isSys()) {
            for (std::size_t p = 0; p < i; ++p)
                add_edge(static_cast<std::uint16_t>(p), idx);
            last_sys = static_cast<std::int32_t>(i);
        } else if (last_sys >= 0) {
            add_edge(static_cast<std::uint16_t>(last_sys), idx);
        }

        // Anti/output register dependencies.
        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst != kRegZero) {
            if (with_antideps) {
                if (last_def[dst] >= 0 &&
                    last_def[dst] != static_cast<std::int32_t>(i))
                    add_edge(static_cast<std::uint16_t>(last_def[dst]), idx);
                for (std::uint16_t r : readers[dst])
                    if (r != idx)
                        add_edge(r, idx);
            }
            last_def[dst] = static_cast<std::int32_t>(i);
            readers[dst].clear();
            version[dst] = static_cast<std::int32_t>(i);
        }
    }
    return graph;
}

} // namespace fgp
