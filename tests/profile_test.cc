/**
 * Interval-profiler and critical-path invariants: per-window closure
 * against the run aggregates, slot closure inside every window,
 * residency accounting, critical-path soundness bounds, determinism
 * across sweep thread counts, and schedule invariance (profiling must
 * never change what the engine does).
 */

#include <gtest/gtest.h>

#include "analyze/analyze.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "profile/critpath.hh"
#include "profile/profile.hh"

namespace fgp {
namespace {

MachineConfig
cfg(Discipline d, int issue, char mem, BranchMode branch)
{
    return {d, issueModel(issue), memoryConfig(mem), branch};
}

ExperimentRunner::EngineTweaks
profiled(std::uint64_t window)
{
    ExperimentRunner::EngineTweaks tweaks;
    tweaks.profileWindow = window;
    return tweaks;
}

/** Sum one WindowSample field across all windows of a profile. */
template <typename Get>
std::uint64_t
windowSum(const profile::RunProfile &p, Get get)
{
    std::uint64_t sum = 0;
    for (const profile::WindowSample &w : p.windows)
        sum += get(w);
    return sum;
}

TEST(Profile, WindowsCloseAgainstAggregatesOnAllWorkloads)
{
    ExperimentRunner runner(0.2);
    runner.setEngineTweaks(profiled(2000));
    const MachineConfig config =
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged);

    for (const std::string &name : workloadNames()) {
        SCOPED_TRACE(name);
        const ExperimentResult r = runner.run(name, config);
        ASSERT_TRUE(r.profile.enabled);
        const profile::RunProfile &p = r.profile;
        ASSERT_FALSE(p.windows.empty());
        EXPECT_EQ(p.windowCycles, 2000u);
        EXPECT_EQ(p.issueWidth, r.engine.issueWidth);

        // Every counter telescopes: the per-window deltas sum exactly
        // to the engine's run totals.
        const EngineResult &e = r.engine;
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.cycles; }),
                  e.cycles);
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.issuedNodes; }),
                  e.issuedNodes);
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.retiredNodes; }),
                  e.retiredNodes);
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.executedNodes; }),
                  e.executedNodes);
        EXPECT_EQ(
            windowSum(p, [](const auto &w) { return w.committedBlocks; }),
            e.committedBlocks);
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.squashedBlocks; }),
                  e.squashedBlocks);
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.mispredicts; }),
                  e.mispredicts);
        EXPECT_EQ(windowSum(p, [](const auto &w) { return w.faultsFired; }),
                  e.faultsFired);

        // Full stall-cause breakdown, cause by cause.
        const StallBreakdown &st = e.stalls;
        EXPECT_EQ(windowSum(p, [](const auto &w) {
                      return w.stalls.fetchRedirectSlots;
                  }),
                  st.fetchRedirectSlots);
        EXPECT_EQ(windowSum(
                      p, [](const auto &w) { return w.stalls.fetchIdleSlots; }),
                  st.fetchIdleSlots);
        EXPECT_EQ(windowSum(p, [](const auto &w) {
                      return w.stalls.windowFullSlots;
                  }),
                  st.windowFullSlots);
        EXPECT_EQ(windowSum(
                      p, [](const auto &w) { return w.stalls.shortWordSlots; }),
                  st.shortWordSlots);
        EXPECT_EQ(
            windowSum(p, [](const auto &w) { return w.stalls.drainSlots; }),
            st.drainSlots);
        EXPECT_EQ(windowSum(p, [](const auto &w) {
                      return w.stalls.operandWaitNodeCycles;
                  }),
                  st.operandWaitNodeCycles);
        EXPECT_EQ(windowSum(p, [](const auto &w) {
                      return w.stalls.memoryWaitNodeCycles;
                  }),
                  st.memoryWaitNodeCycles);
        EXPECT_EQ(windowSum(p, [](const auto &w) {
                      return w.stalls.serializeWaitNodeCycles;
                  }),
                  st.serializeWaitNodeCycles);
        EXPECT_EQ(windowSum(p, [](const auto &w) {
                      return w.stalls.fuBusyNodeCycles;
                  }),
                  st.fuBusyNodeCycles);
    }
}

TEST(Profile, SlotClosureHoldsPerWindow)
{
    ExperimentRunner runner(0.2);
    runner.setEngineTweaks(profiled(1000));

    for (const std::string &name : workloadNames()) {
        SCOPED_TRACE(name);
        const ExperimentResult r = runner.run(
            name, cfg(Discipline::Dyn256, 8, 'G', BranchMode::Single));
        const profile::RunProfile &p = r.profile;
        ASSERT_TRUE(p.enabled);
        const std::uint64_t width =
            static_cast<std::uint64_t>(p.issueWidth);
        for (std::size_t i = 0; i < p.windows.size(); ++i) {
            const profile::WindowSample &w = p.windows[i];
            SCOPED_TRACE("window " + std::to_string(i));
            // PR 2's slot-closure invariant, per window: every issue
            // slot is either a node or exactly one stall cause.
            EXPECT_EQ(w.issuedNodes + w.stalls.totalSlots(),
                      w.cycles * width);
            // Drain slots exist only in the window holding the exit.
            if (i + 1 < p.windows.size()) {
                EXPECT_EQ(w.stalls.drainSlots, 0u);
            }
            // Window geometry: contiguous, full-length except the last.
            EXPECT_EQ(w.index, i);
            if (i > 0) {
                EXPECT_EQ(w.startCycle, p.windows[i - 1].startCycle +
                                            p.windows[i - 1].cycles);
            }
            if (i + 1 < p.windows.size()) {
                EXPECT_EQ(w.cycles, p.windowCycles);
            }
            EXPECT_LE(w.readySum, w.cycles * w.readyMax);
        }
    }
}

TEST(Profile, ResidencySumsToRetiredNodes)
{
    ExperimentRunner runner(0.2);
    runner.setEngineTweaks(profiled(2000));
    const ExperimentResult r = runner.run(
        "sort", cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged));
    const profile::RunProfile &p = r.profile;
    ASSERT_TRUE(p.enabled);

    std::uint64_t total = 0;
    for (const profile::WindowSample &w : p.windows) {
        ASSERT_LE(static_cast<std::size_t>(w.residencyOffset) +
                      w.residencyCount,
                  p.residency.size());
        std::uint64_t in_window = 0;
        for (std::uint32_t i = 0; i < w.residencyCount; ++i) {
            const profile::ResidencyEntry &entry =
                p.residency[w.residencyOffset + i];
            EXPECT_LT(entry.block, r.engine.blockStats.size());
            EXPECT_GT(entry.retiredNodes, 0u);
            in_window += entry.retiredNodes;
        }
        // Each window's sparse residency slice accounts for exactly the
        // nodes that retired in that window.
        EXPECT_EQ(in_window, w.retiredNodes);
        total += in_window;
    }
    EXPECT_EQ(total, r.engine.retiredNodes);
}

TEST(Profile, CriticalPathIsSoundOnAllWorkloads)
{
    ExperimentRunner runner(0.2);
    runner.setEngineTweaks(profiled(2000));

    for (const std::string &name : workloadNames()) {
        for (const MachineConfig &config :
             {cfg(Discipline::Static, 8, 'A', BranchMode::Single),
              cfg(Discipline::Dyn256, 8, 'G', BranchMode::Enlarged)}) {
            SCOPED_TRACE(name + " " + config.name());
            const ExperimentResult r = runner.run(name, config);
            const profile::CritPath &cp = r.profile.critPath;

            // A monotone cursor cannot attribute more than the run.
            EXPECT_GT(cp.pathCycles, 0u);
            EXPECT_LE(cp.pathCycles, r.cycles);
            EXPECT_LE(cp.pathNodes, cp.pathCycles);
            // Every path cycle has exactly one cause...
            EXPECT_EQ(cp.causeTotal(), cp.pathCycles);
            // ...and exactly one static block.
            std::uint64_t block_total = 0;
            for (std::uint64_t c : cp.blockCycles)
                block_total += c;
            EXPECT_EQ(block_total, cp.pathCycles);
            EXPECT_EQ(cp.blockCycles.size(), r.engine.blockStats.size());
            // The joint block x cause matrix refines both marginals:
            // each row sums to its block's path cycles.
            ASSERT_EQ(cp.blockCauses.size(), cp.blockCycles.size());
            for (std::size_t b = 0; b < cp.blockCauses.size(); ++b) {
                std::uint64_t row = 0;
                for (std::uint64_t c : cp.blockCauses[b])
                    row += c;
                EXPECT_EQ(row, cp.blockCycles[b]);
            }
            // Path-implied IPC <= 1 <= the analyzer's static bound.
            EXPECT_LE(cp.impliedIpc(), 1.0);
            EXPECT_LE(cp.impliedIpc(), r.staticIpcBound + 1e-9);
        }
    }
}

TEST(Profile, BitIdenticalAcrossSweepThreadCounts)
{
    std::vector<SweepPoint> points;
    for (const std::string &name : workloadNames())
        points.push_back(
            {name, cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged)});

    ExperimentRunner serial_runner(0.2);
    serial_runner.setEngineTweaks(profiled(2000));
    const std::vector<ExperimentResult> serial =
        runSweep(serial_runner, points, 1);

    ExperimentRunner parallel_runner(0.2);
    parallel_runner.setEngineTweaks(profiled(2000));
    const std::vector<ExperimentResult> parallel =
        runSweep(parallel_runner, points, 8);

    ASSERT_EQ(serial.size(), points.size());
    ASSERT_EQ(parallel.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE(points[i].workload);
        const profile::RunProfile &a = serial[i].profile;
        const profile::RunProfile &b = parallel[i].profile;
        ASSERT_TRUE(a.enabled);
        ASSERT_TRUE(b.enabled);
        ASSERT_EQ(a.windows.size(), b.windows.size());
        for (std::size_t w = 0; w < a.windows.size(); ++w) {
            const profile::WindowSample &x = a.windows[w];
            const profile::WindowSample &y = b.windows[w];
            SCOPED_TRACE("window " + std::to_string(w));
            EXPECT_EQ(x.startCycle, y.startCycle);
            EXPECT_EQ(x.cycles, y.cycles);
            EXPECT_EQ(x.issuedNodes, y.issuedNodes);
            EXPECT_EQ(x.retiredNodes, y.retiredNodes);
            EXPECT_EQ(x.executedNodes, y.executedNodes);
            EXPECT_EQ(x.mispredicts, y.mispredicts);
            EXPECT_EQ(x.stalls.fetchRedirectSlots,
                      y.stalls.fetchRedirectSlots);
            EXPECT_EQ(x.stalls.fetchIdleSlots, y.stalls.fetchIdleSlots);
            EXPECT_EQ(x.stalls.windowFullSlots, y.stalls.windowFullSlots);
            EXPECT_EQ(x.stalls.shortWordSlots, y.stalls.shortWordSlots);
            EXPECT_EQ(x.stalls.drainSlots, y.stalls.drainSlots);
            EXPECT_EQ(x.readySum, y.readySum);
            EXPECT_EQ(x.readyMax, y.readyMax);
            EXPECT_EQ(x.liveMax, y.liveMax);
            EXPECT_EQ(x.storeQueueMax, y.storeQueueMax);
            EXPECT_EQ(x.writeBufMax, y.writeBufMax);
            EXPECT_EQ(x.schedHash, y.schedHash);
        }
        EXPECT_EQ(a.critPath.pathCycles, b.critPath.pathCycles);
        EXPECT_EQ(a.critPath.pathNodes, b.critPath.pathNodes);
        EXPECT_EQ(a.critPath.blockCycles, b.critPath.blockCycles);
    }
}

TEST(Profile, ProfilingNeverChangesTheSchedule)
{
    const MachineConfig config =
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Enlarged);

    ExperimentRunner plain(0.2);
    const ExperimentResult off = plain.run("compress", config);
    EXPECT_FALSE(off.profile.enabled);
    EXPECT_TRUE(off.profile.windows.empty());

    ExperimentRunner prof(0.2);
    prof.setEngineTweaks(profiled(1000));
    const ExperimentResult on = prof.run("compress", config);
    ASSERT_TRUE(on.profile.enabled);

    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.engine.retiredNodes, off.engine.retiredNodes);
    EXPECT_EQ(on.engine.executedNodes, off.engine.executedNodes);
    EXPECT_EQ(on.engine.issuedNodes, off.engine.issuedNodes);
    EXPECT_EQ(on.engine.mispredicts, off.engine.mispredicts);
    EXPECT_EQ(on.engine.stalls.totalSlots(), off.engine.stalls.totalSlots());
    EXPECT_DOUBLE_EQ(on.nodesPerCycle, off.nodesPerCycle);
}

TEST(Profile, ExtractorHandlesDegenerateLogs)
{
    // Empty log and zero-cycle runs return an all-zero path.
    const profile::CritPath empty =
        profile::extractCriticalPath({}, 100, 4);
    EXPECT_EQ(empty.pathCycles, 0u);
    EXPECT_EQ(empty.pathNodes, 0u);
    EXPECT_EQ(empty.causeTotal(), 0u);
    EXPECT_EQ(empty.blockCycles.size(), 4u);

    // A single node spanning the whole run claims every cycle.
    profile::RetiredNode n;
    n.seq = 1;
    n.parentSeq = 0;
    n.issueCycle = 0;
    n.readyCycle = 2;
    n.schedCycle = 5;
    n.completeCycle = 9;
    n.block = 1;
    n.edge = profile::EdgeKind::Data;
    const profile::CritPath one =
        profile::extractCriticalPath({n}, 10, 4);
    EXPECT_EQ(one.pathCycles, 10u);
    EXPECT_EQ(one.pathNodes, 1u);
    EXPECT_EQ(one.cause(profile::CritCause::Retire), 1u);  // 9 -> 10
    EXPECT_EQ(one.cause(profile::CritCause::Execute), 4u); // 5 -> 9
    EXPECT_EQ(one.cause(profile::CritCause::FuBusy), 3u);  // 2 -> 5
    EXPECT_EQ(one.cause(profile::CritCause::Operand),
              2u); // 0 -> 2 (Data edge)
    EXPECT_EQ(one.causeTotal(), one.pathCycles);
    EXPECT_EQ(one.blockCycles[1], 10u);
    ASSERT_EQ(one.blockCauses.size(), 4u);
    std::uint64_t row = 0;
    for (const std::uint64_t c : one.blockCauses[1])
        row += c;
    EXPECT_EQ(row, one.blockCycles[1]);
    EXPECT_LE(one.impliedIpc(), 1.0);
}

} // namespace
} // namespace fgp
