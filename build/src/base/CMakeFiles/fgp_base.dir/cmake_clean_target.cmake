file(REMOVE_RECURSE
  "libfgp_base.a"
)
