#include "profile/profile.hh"

#include "base/logging.hh"

namespace fgp {
namespace profile {

void
IntervalProfiler::beginRun(int issue_width, std::size_t num_blocks)
{
    issueWidth_ = issue_width;
    windows_.clear();
    residency_.clear();
    retired_.clear();
    schedHash_ = kFnvOffsetBasis;
    prev_ = CounterSnapshot{};
    windowStart_ = 0;
    prevBlockRetired_.assign(num_blocks, 0);
    readySum_ = readyMax_ = liveMax_ = 0;
    storeQueueMax_ = writeBufMax_ = 0;
}

void
IntervalProfiler::closeWindow(std::uint64_t end_cycle,
                              const CounterSnapshot &counters,
                              const std::vector<BlockStat> &block_stats,
                              bool final)
{
    // The final close can land exactly on a window boundary that was
    // already flushed; an empty trailing window carries no information.
    if (end_cycle == windowStart_) {
        fgp_assert(final, "mid-run window close without elapsed cycles");
        return;
    }
    fgp_assert(end_cycle > windowStart_, "window boundary moved backward");

    WindowSample w;
    w.index = windows_.size();
    w.startCycle = windowStart_;
    w.cycles = end_cycle - windowStart_;

    const CounterSnapshot &c = counters;
    w.issuedNodes = c.issuedNodes - prev_.issuedNodes;
    w.retiredNodes = c.retiredNodes - prev_.retiredNodes;
    w.executedNodes = c.executedNodes - prev_.executedNodes;
    w.committedBlocks = c.committedBlocks - prev_.committedBlocks;
    w.squashedBlocks = c.squashedBlocks - prev_.squashedBlocks;
    w.mispredicts = c.mispredicts - prev_.mispredicts;
    w.faultsFired = c.faultsFired - prev_.faultsFired;

    // Slot attribution: the engine accounts exactly `width` slots on
    // every cycle it issues on, so the per-window books close the same
    // way the whole-run books do — the unaccounted remainder (the exit
    // cycle's drained slots) can only appear in the final window.
    const std::uint64_t width = static_cast<std::uint64_t>(issueWidth_);
    StallBreakdown &st = w.stalls;
    st.fetchRedirectSlots =
        (c.fetchRedirectCycles - prev_.fetchRedirectCycles) * width;
    st.fetchIdleSlots = (c.fetchIdleCycles - prev_.fetchIdleCycles) * width;
    st.windowFullSlots =
        (c.windowFullCycles - prev_.windowFullCycles) * width;
    st.shortWordSlots = c.shortWordSlots - prev_.shortWordSlots;
    const std::uint64_t total = w.cycles * width;
    const std::uint64_t accounted = w.issuedNodes + st.fetchRedirectSlots +
                                    st.fetchIdleSlots + st.windowFullSlots +
                                    st.shortWordSlots;
    fgp_assert(accounted <= total,
               "window stall accounting overran the issue-slot budget");
    st.drainSlots = total - accounted;
    fgp_assert(final || st.drainSlots == 0,
               "drained slots in a mid-run window");

    st.operandWaitNodeCycles =
        c.operandWaitNodeCycles - prev_.operandWaitNodeCycles;
    st.memoryWaitNodeCycles =
        c.memoryWaitNodeCycles - prev_.memoryWaitNodeCycles;
    st.serializeWaitNodeCycles =
        c.serializeWaitNodeCycles - prev_.serializeWaitNodeCycles;
    st.fuBusyNodeCycles = c.fuBusyNodeCycles - prev_.fuBusyNodeCycles;

    w.readySum = readySum_;
    w.readyMax = readyMax_;
    w.liveMax = liveMax_;
    w.storeQueueMax = storeQueueMax_;
    w.writeBufMax = writeBufMax_;
    w.schedHash = schedHash_;

    // Per-block residency: which static blocks retired nodes inside this
    // window (sparse — only touched blocks get an entry).
    w.residencyOffset = static_cast<std::uint32_t>(residency_.size());
    fgp_assert(block_stats.size() == prevBlockRetired_.size(),
               "block count changed mid-run");
    for (std::size_t i = 0; i < block_stats.size(); ++i) {
        const std::uint64_t cur = block_stats[i].retiredNodes;
        const std::uint64_t delta = cur - prevBlockRetired_[i];
        if (delta) {
            residency_.push_back(
                {static_cast<std::uint32_t>(i), delta});
            prevBlockRetired_[i] = cur;
        }
    }
    w.residencyCount =
        static_cast<std::uint32_t>(residency_.size()) - w.residencyOffset;

    windows_.push_back(w);
    prev_ = counters;
    windowStart_ = end_cycle;
    readySum_ = readyMax_ = liveMax_ = 0;
    storeQueueMax_ = writeBufMax_ = 0;
}

} // namespace profile
} // namespace fgp
