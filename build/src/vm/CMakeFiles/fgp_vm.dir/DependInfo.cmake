
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/atomic_runner.cc" "src/vm/CMakeFiles/fgp_vm.dir/atomic_runner.cc.o" "gcc" "src/vm/CMakeFiles/fgp_vm.dir/atomic_runner.cc.o.d"
  "/root/repo/src/vm/interp.cc" "src/vm/CMakeFiles/fgp_vm.dir/interp.cc.o" "gcc" "src/vm/CMakeFiles/fgp_vm.dir/interp.cc.o.d"
  "/root/repo/src/vm/profile_io.cc" "src/vm/CMakeFiles/fgp_vm.dir/profile_io.cc.o" "gcc" "src/vm/CMakeFiles/fgp_vm.dir/profile_io.cc.o.d"
  "/root/repo/src/vm/simos.cc" "src/vm/CMakeFiles/fgp_vm.dir/simos.cc.o" "gcc" "src/vm/CMakeFiles/fgp_vm.dir/simos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/fgp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fgp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
