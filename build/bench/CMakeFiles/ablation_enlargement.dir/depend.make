# Empty dependencies file for ablation_enlargement.
# This may be replaced when dependencies are built.
