/**
 * Golden-model equivalence: for every benchmark and a grid of machine
 * configurations (at reduced input scale), the cycle engine's
 * architectural results must match the functional VM byte-for-byte. The
 * ExperimentRunner panics on divergence, so a clean run IS the assertion;
 * this test also cross-checks metric plumbing.
 *
 * The full 560-point grid runs at a tiny input scale behind one test;
 * a denser medium-scale subset covers the interesting corners.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fgp {
namespace {

struct GoldenCase
{
    std::string workload;
    MachineConfig config;
};

std::vector<GoldenCase>
mediumGrid()
{
    std::vector<GoldenCase> cases;
    for (const std::string &wl : workloadNames()) {
        for (Discipline d : allDisciplines()) {
            for (int im : {1, 4, 8}) {
                for (char mem : {'A', 'D', 'G'}) {
                    for (BranchMode bm :
                         {BranchMode::Single, BranchMode::Enlarged}) {
                        cases.push_back(
                            {wl, {d, issueModel(im), memoryConfig(mem), bm}});
                    }
                    if (d == Discipline::Dyn4 || d == Discipline::Dyn256) {
                        cases.push_back({wl,
                                         {d, issueModel(im),
                                          memoryConfig(mem),
                                          BranchMode::Perfect}});
                    }
                }
            }
        }
    }
    return cases;
}

class GoldenEquivalence : public ::testing::TestWithParam<GoldenCase>
{
  protected:
    static ExperimentRunner &
    runner()
    {
        static auto *shared = new ExperimentRunner(/*scale=*/0.25);
        return *shared;
    }
};

TEST_P(GoldenEquivalence, EngineMatchesVm)
{
    const GoldenCase &c = GetParam();
    // run() panics if stdout or the exit code diverges from the VM.
    const ExperimentResult r = runner().run(c.workload, c.config);

    EXPECT_TRUE(r.engine.exited);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.nodesPerCycle, 0.0);
    // Raw machine throughput is bounded by the word width. (The
    // reference-node metric may exceed it slightly under enlargement:
    // local re-optimization removes nodes, a genuine software speedup.)
    EXPECT_LE(r.engine.nodesPerCycle(),
              static_cast<double>(c.config.issue.width()) + 1e-9);

    // Single-block images translate 1:1, so raw retired nodes equal the
    // functional VM's dynamic node count.
    if (c.config.branch == BranchMode::Single) {
        EXPECT_EQ(r.engine.retiredNodes, r.refNodes);
    }

    // Redundancy is a fraction.
    EXPECT_GE(r.engine.redundancy(), 0.0);
    EXPECT_LT(r.engine.redundancy(), 1.0);

    if (c.config.branch == BranchMode::Perfect) {
        EXPECT_EQ(r.engine.mispredicts, 0u);
        EXPECT_EQ(r.engine.faultsFired, 0u);
    }

    EXPECT_LE(r.engine.windowOccupancy.max(),
              static_cast<std::uint64_t>(
                  windowBlocks(c.config.discipline)));
}

std::string
caseName(const ::testing::TestParamInfo<GoldenCase> &info)
{
    std::string name = info.param.workload + "_" +
                       disciplineName(info.param.config.discipline) + "_" +
                       info.param.config.pointCode() + "_" +
                       branchModeName(info.param.config.branch);
    return name;
}

INSTANTIATE_TEST_SUITE_P(MediumGrid, GoldenEquivalence,
                         ::testing::ValuesIn(mediumGrid()), caseName);

/** The complete 560-configuration grid on tiny inputs, per benchmark. */
class FullGridTinyInputs : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FullGridTinyInputs, AllConfigurationsMatchVm)
{
    ExperimentRunner runner(/*scale=*/0.05);
    std::uint64_t total_cycles = 0;
    for (const MachineConfig &config : fullConfigGrid()) {
        const ExperimentResult r = runner.run(GetParam(), config);
        total_cycles += r.cycles;
    }
    EXPECT_GT(total_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FullGridTinyInputs,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace fgp
