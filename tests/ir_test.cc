/** Unit tests for opcodes, nodes, programs, CFG and image validation. */

#include <gtest/gtest.h>

#include "base/logging.hh"

#include "ir/cfg.hh"
#include "ir/image.hh"
#include "ir/printer.hh"
#include "ir/program.hh"
#include "masm/assembler.hh"

namespace fgp {
namespace {

TEST(Opcode, MetadataClasses)
{
    EXPECT_EQ(nodeClass(Opcode::ADD), NodeClass::IntAlu);
    EXPECT_EQ(nodeClass(Opcode::LW), NodeClass::Mem);
    EXPECT_EQ(nodeClass(Opcode::SW), NodeClass::Mem);
    EXPECT_EQ(nodeClass(Opcode::BEQ), NodeClass::Control);
    EXPECT_EQ(nodeClass(Opcode::J), NodeClass::Control);
    EXPECT_EQ(nodeClass(Opcode::SYSCALL), NodeClass::Sys);
    EXPECT_EQ(nodeClass(Opcode::FEQ), NodeClass::Fault);
}

TEST(Opcode, LoadStoreFlags)
{
    EXPECT_TRUE(isLoad(Opcode::LW));
    EXPECT_TRUE(isLoad(Opcode::LB));
    EXPECT_TRUE(isLoad(Opcode::LBU));
    EXPECT_FALSE(isLoad(Opcode::SW));
    EXPECT_TRUE(isStore(Opcode::SW));
    EXPECT_TRUE(isStore(Opcode::SB));
    EXPECT_FALSE(isStore(Opcode::LW));
    EXPECT_TRUE(isMem(Opcode::SB));
    EXPECT_FALSE(isMem(Opcode::ADD));
}

TEST(Opcode, MnemonicRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto back = opcodeFromMnemonic(mnemonic(op));
        ASSERT_TRUE(back.has_value()) << mnemonic(op);
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(opcodeFromMnemonic("bogus").has_value());
    EXPECT_EQ(opcodeFromMnemonic("ADD"), Opcode::ADD); // case-insensitive
}

TEST(Opcode, BranchFaultMapping)
{
    EXPECT_EQ(branchToFault(Opcode::BEQ), Opcode::FEQ);
    EXPECT_EQ(branchToFault(Opcode::BGEU), Opcode::FGEU);
    EXPECT_EQ(faultToBranch(Opcode::FLT), Opcode::BLT);
    for (auto op : {Opcode::BEQ, Opcode::BNE, Opcode::BLT, Opcode::BGE,
                    Opcode::BLTU, Opcode::BGEU})
        EXPECT_EQ(faultToBranch(branchToFault(op)), op);
}

TEST(Opcode, InvertCondition)
{
    EXPECT_EQ(invertCondition(Opcode::BEQ), Opcode::BNE);
    EXPECT_EQ(invertCondition(Opcode::BNE), Opcode::BEQ);
    EXPECT_EQ(invertCondition(Opcode::BLT), Opcode::BGE);
    EXPECT_EQ(invertCondition(Opcode::BGEU), Opcode::BLTU);
    for (auto op : {Opcode::BEQ, Opcode::BLT, Opcode::BLTU, Opcode::FNE})
        EXPECT_EQ(invertCondition(invertCondition(op)), op);
}

TEST(Node, SrcRegsPerForm)
{
    std::array<std::uint8_t, 5> srcs;

    Node add{Opcode::ADD, 3, 1, 2};
    EXPECT_EQ(add.srcRegs(srcs), 2);
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], 2);
    EXPECT_EQ(add.dstReg(), 3);

    Node load{Opcode::LW, 5, 6, kRegNone, 8};
    EXPECT_EQ(load.srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], 6);
    EXPECT_EQ(load.dstReg(), 5);

    Node store{Opcode::SW, kRegNone, 6, 7, 8};
    EXPECT_EQ(store.srcRegs(srcs), 2);
    EXPECT_EQ(store.dstReg(), kRegNone);

    Node sys{Opcode::SYSCALL};
    EXPECT_EQ(sys.srcRegs(srcs), 5);
    EXPECT_EQ(srcs[0], kRegV0);
    EXPECT_EQ(sys.dstReg(), kRegV0);

    Node jump{Opcode::J};
    EXPECT_EQ(jump.srcRegs(srcs), 0);
    EXPECT_EQ(jump.dstReg(), kRegNone);

    Node jal{Opcode::JAL, kRegRa};
    EXPECT_EQ(jal.srcRegs(srcs), 0);
    EXPECT_EQ(jal.dstReg(), kRegRa);

    Node jr{Opcode::JR, kRegNone, kRegRa};
    EXPECT_EQ(jr.srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], kRegRa);
}

TEST(Program, ValidationCatchesBadTargets)
{
    Program prog;
    Node branch;
    branch.op = Opcode::BEQ;
    branch.rs1 = 1;
    branch.rs2 = 2;
    branch.target = 5; // out of range
    prog.instrs.push_back(branch);
    EXPECT_THROW(validateProgram(prog), FatalError);
}

TEST(Program, ValidationCatchesScratchRegisters)
{
    Program prog;
    Node add;
    add.op = Opcode::ADD;
    add.rd = kNumArchRegs; // first scratch register
    add.rs1 = 1;
    add.rs2 = 2;
    prog.instrs.push_back(add);
    EXPECT_THROW(validateProgram(prog), FatalError);
}

TEST(Program, ValidationCatchesFaultNodes)
{
    Program prog;
    Node fault;
    fault.op = Opcode::FEQ;
    fault.rs1 = 1;
    fault.rs2 = 2;
    fault.target = 0;
    prog.instrs.push_back(fault);
    EXPECT_THROW(validateProgram(prog), FatalError);
}

TEST(Program, EmptyProgramInvalid)
{
    Program prog;
    EXPECT_THROW(validateProgram(prog), FatalError);
}

Program
miniProgram()
{
    return assemble(R"(
main:   li   r8, 3
loop:   addi r8, r8, -1
        bnez r8, loop
        jal  helper
        li   v0, 0
        li   a0, 0
        syscall
helper: ret
)");
}

TEST(Cfg, LeadersAndFallthrough)
{
    const Program prog = miniProgram();
    const CodeImage image = buildCfg(prog);

    // Blocks: [li], [addi,bnez], [jal], [li,li,syscall], [ret]
    ASSERT_EQ(image.blocks.size(), 5u);
    EXPECT_EQ(image.entryBlock, image.blockAtPc(prog.entry));

    const ImageBlock &b0 = image.blocks[0];
    EXPECT_EQ(b0.nodes.size(), 1u);
    EXPECT_EQ(b0.terminal(), nullptr);
    EXPECT_EQ(b0.fallthroughPc, 1);

    const ImageBlock &b1 = image.blocks[1];
    ASSERT_NE(b1.terminal(), nullptr);
    EXPECT_EQ(b1.terminal()->op, Opcode::BNE);
    EXPECT_EQ(b1.fallthroughPc, 3);

    const ImageBlock &b2 = image.blocks[2];
    ASSERT_NE(b2.terminal(), nullptr);
    EXPECT_EQ(b2.terminal()->op, Opcode::JAL);

    const ImageBlock &b3 = image.blocks[3];
    EXPECT_TRUE(b3.hasSyscall);
    EXPECT_EQ(b3.fallthroughPc, 7); // the ret block follows

    const ImageBlock &b4 = image.blocks[4];
    ASSERT_NE(b4.terminal(), nullptr);
    EXPECT_EQ(b4.terminal()->op, Opcode::JR);
}

TEST(Cfg, OrigPcAssigned)
{
    const Program prog = miniProgram();
    const CodeImage image = buildCfg(prog);
    for (const ImageBlock &block : image.blocks) {
        std::int32_t expect = block.entryPc;
        for (const Node &node : block.nodes)
            EXPECT_EQ(node.origPc, expect++);
    }
}

TEST(Cfg, EveryLeaderMapped)
{
    const Program prog = miniProgram();
    const CodeImage image = buildCfg(prog);
    for (const ImageBlock &block : image.blocks)
        EXPECT_EQ(image.blockAtPc(block.entryPc), block.id);
}

TEST(Image, ValidateCatchesMisplacedControl)
{
    const Program prog = miniProgram();
    CodeImage image = buildCfg(prog);
    // Move a control node away from the end of its block.
    ImageBlock &b1 = image.blocks[1];
    std::swap(b1.nodes[0], b1.nodes[1]);
    EXPECT_THROW(validateImage(image), FatalError);
}

TEST(Image, ValidateCatchesBadFaultTarget)
{
    const Program prog = miniProgram();
    CodeImage image = buildCfg(prog);
    Node fault;
    fault.op = Opcode::FEQ;
    fault.rs1 = 1;
    fault.rs2 = 2;
    fault.target = 999; // no such block
    image.blocks[0].nodes.insert(image.blocks[0].nodes.begin(), fault);
    EXPECT_THROW(validateImage(image), FatalError);
}

TEST(Image, ValidateCatchesDuplicateWordEntries)
{
    const Program prog = miniProgram();
    CodeImage image = buildCfg(prog);
    image.blocks[1].words = {{0, 0}, {1}};
    EXPECT_THROW(validateImage(image), FatalError);
}

TEST(Printer, RegisterNames)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regName(kRegSp), "sp");
    EXPECT_EQ(regName(kRegRa), "ra");
    EXPECT_EQ(regName(kNumArchRegs), "t0");
    EXPECT_EQ(regName(kRegNone), "-");
}

TEST(Printer, FormatsEveryForm)
{
    Node add{Opcode::ADD, 3, 1, 2};
    EXPECT_EQ(formatNode(add), "add r3, r1, r2");
    Node load{Opcode::LW, 5, 6, kRegNone, -8};
    EXPECT_EQ(formatNode(load), "lw r5, -8(r6)");
    Node store{Opcode::SB, kRegNone, 6, 7, 4};
    EXPECT_EQ(formatNode(store), "sb r7, 4(r6)");
    Node branch;
    branch.op = Opcode::BLT;
    branch.rs1 = 1;
    branch.rs2 = 2;
    branch.target = 10;
    EXPECT_EQ(formatNode(branch), "blt r1, r2, .L10");
    Node fault;
    fault.op = Opcode::FNE;
    fault.rs1 = 1;
    fault.rs2 = 2;
    fault.target = 3;
    EXPECT_EQ(formatNode(fault), "fne r1, r2, @3");
    Node sys{Opcode::SYSCALL};
    EXPECT_EQ(formatNode(sys), "syscall");
}

} // namespace
} // namespace fgp
