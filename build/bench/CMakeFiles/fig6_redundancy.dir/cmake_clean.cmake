file(REMOVE_RECURSE
  "CMakeFiles/fig6_redundancy.dir/fig6_redundancy.cc.o"
  "CMakeFiles/fig6_redundancy.dir/fig6_redundancy.cc.o.d"
  "fig6_redundancy"
  "fig6_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
