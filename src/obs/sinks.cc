#include "obs/sinks.hh"

#include <algorithm>
#include <iomanip>
#include <string>

#include "base/strutil.hh"
#include "ir/printer.hh"
#include "obs/json.hh"

namespace fgp::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Issue: return "issue";
      case EventKind::Schedule: return "schedule";
      case EventKind::Complete: return "complete";
      case EventKind::Resolve: return "resolve";
      case EventKind::Squash: return "squash";
      case EventKind::Retire: return "retire";
      case EventKind::LoadBlock: return "load_block";
      case EventKind::LoadWake: return "load_wake";
      case EventKind::StoreForward: return "store_forward";
      case EventKind::AssertFire: return "assert_fire";
    }
    return "?";
}

// ---------------------------------------------------------------------
// TextTraceSink
// ---------------------------------------------------------------------

void
TextTraceSink::onEvent(const SimEvent &ev)
{
    os_ << "[" << ev.cycle << "] ";
    switch (ev.kind) {
      case EventKind::Issue: {
        os_ << "issue  block#" << ev.bseq << " (image " << ev.imageId
            << ") word " << ev.wordIdx << ":";
        const Word &word = ev.block->words[ev.wordIdx];
        for (std::size_t i = 0; i < word.size(); ++i)
            os_ << (i ? " | " : " ") << formatNode(ev.block->nodes[word[i]]);
        break;
      }
      case EventKind::Schedule:
        os_ << "exec   seq=" << ev.seq << " " << formatNode(*ev.node);
        if (ev.node->isLoad()) {
            os_ << " addr=0x" << std::hex << ev.addr << std::dec
                << (ev.forwarded ? " (forwarded)" : "")
                << " latency=" << ev.latency;
        }
        break;
      case EventKind::Complete:
        os_ << "done   seq=" << ev.seq << " " << mnemonic(ev.node->op)
            << " value=" << ev.value;
        break;
      case EventKind::Resolve:
        os_ << "branch block#" << ev.bseq << " " << mnemonic(ev.node->op)
            << " pc=" << ev.node->origPc;
        if (isConditionalBranch(ev.node->op))
            os_ << (ev.taken ? " taken" : " not-taken");
        else
            os_ << " target=" << ev.value;
        os_ << (ev.mispredict ? " (MISPREDICT)" : " (predicted)");
        break;
      case EventKind::Squash:
        os_ << "squash block#" << ev.bseq << " (image " << ev.imageId
            << ", " << ev.count << " nodes)";
        break;
      case EventKind::Retire:
        if (ev.partial)
            os_ << "retire block#" << ev.bseq << " (exit, " << ev.count
                << " nodes)";
        else
            os_ << "retire block#" << ev.bseq << " (image " << ev.imageId
                << ", " << ev.count << " nodes)";
        break;
      case EventKind::LoadBlock:
        os_ << "lblock seq=" << ev.seq << " addr=0x" << std::hex << ev.addr
            << std::dec << " on=" << ev.blocker;
        break;
      case EventKind::LoadWake:
        os_ << "lwake  seq=" << ev.seq;
        break;
      case EventKind::StoreForward:
        os_ << "fwd    seq=" << ev.seq << " addr=0x" << std::hex << ev.addr
            << std::dec;
        break;
      case EventKind::AssertFire:
        os_ << "fault  block#" << ev.bseq << " " << formatNode(*ev.node)
            << " -> block image " << ev.target;
        break;
    }
    os_ << "\n";
}

// ---------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------

void
JsonlSink::onEvent(const SimEvent &ev)
{
    os_ << "{\"cycle\":" << ev.cycle << ",\"kind\":\""
        << eventKindName(ev.kind) << "\"";
    if (ev.seq)
        os_ << ",\"seq\":" << ev.seq;
    if (ev.bseq)
        os_ << ",\"bseq\":" << ev.bseq;
    if (ev.imageId >= 0)
        os_ << ",\"image\":" << ev.imageId;
    if (ev.node)
        os_ << ",\"node\":\"" << jsonEscape(formatNode(*ev.node)) << "\"";

    switch (ev.kind) {
      case EventKind::Issue: {
        os_ << ",\"word\":" << ev.wordIdx << ",\"nodes\":[";
        const Word &word = ev.block->words[ev.wordIdx];
        for (std::size_t i = 0; i < word.size(); ++i)
            os_ << (i ? "," : "") << "\""
                << jsonEscape(formatNode(ev.block->nodes[word[i]])) << "\"";
        os_ << "]";
        break;
      }
      case EventKind::Schedule:
        os_ << ",\"latency\":" << ev.latency;
        if (ev.node && ev.node->isMem())
            os_ << ",\"addr\":" << ev.addr
                << ",\"forwarded\":" << (ev.forwarded ? "true" : "false");
        break;
      case EventKind::Complete:
        os_ << ",\"value\":" << ev.value;
        break;
      case EventKind::Resolve:
        os_ << ",\"taken\":" << (ev.taken ? "true" : "false")
            << ",\"mispredict\":" << (ev.mispredict ? "true" : "false");
        break;
      case EventKind::Squash:
      case EventKind::Retire:
        os_ << ",\"nodes\":" << ev.count;
        if (ev.kind == EventKind::Retire)
            os_ << ",\"partial\":" << (ev.partial ? "true" : "false");
        break;
      case EventKind::LoadBlock:
        os_ << ",\"addr\":" << ev.addr << ",\"blocker\":" << ev.blocker;
        break;
      case EventKind::StoreForward:
        os_ << ",\"addr\":" << ev.addr;
        break;
      case EventKind::AssertFire:
        os_ << ",\"target\":" << ev.target;
        break;
      case EventKind::LoadWake:
        break;
    }
    os_ << "}\n";
}

// ---------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream &os,
                                 const std::string &process_name, int pid)
    : os_(os), pid_(pid)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        << "{\"ph\":\"M\",\"pid\":" << pid_
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
        << jsonEscape(process_name) << "\"}}";
    first_ = false;
    emitThreadName(pid_, 0, "events");
}

ChromeTraceSink::~ChromeTraceSink()
{
    onRunEnd();
}

void
ChromeTraceSink::onRunEnd()
{
    if (closed_)
        return;
    closed_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

void
ChromeTraceSink::emitCounter(std::uint64_t cycle, const std::string &name,
                             double value)
{
    emitCounter(pid_, cycle, name, value);
}

void
ChromeTraceSink::emitCounter(int pid, std::uint64_t cycle,
                             const std::string &name, double value)
{
    os_ << ",\n{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":"
        << cycle << ",\"name\":\"" << jsonEscape(name)
        << "\",\"args\":{\"" << jsonEscape(name) << "\":" << value
        << "}}";
}

void
ChromeTraceSink::emitProcessName(int pid, const std::string &name)
{
    os_ << ",\n{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
        << jsonEscape(name) << "\"}}";
}

void
ChromeTraceSink::emitThreadName(int pid, int tid, const std::string &name)
{
    os_ << ",\n{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << jsonEscape(name) << "\"}}";
}

void
ChromeTraceSink::emitSlice(const SimEvent &ev)
{
    // Place the slice on the first lane free at its start cycle so
    // overlapping executions render side by side instead of nesting.
    const std::uint64_t ts = ev.cycle;
    const std::uint64_t dur = std::max(ev.latency, 1);
    std::size_t lane = 0;
    while (lane < laneFreeAt_.size() && laneFreeAt_[lane] > ts)
        ++lane;
    if (lane == laneFreeAt_.size()) {
        laneFreeAt_.push_back(0);
        // Name the lane on first use so the viewer shows "fu lane N"
        // instead of bare thread ids.
        emitThreadName(pid_, static_cast<int>(lane) + 1,
                       format("fu lane %zu", lane));
    }
    laneFreeAt_[lane] = ts + dur;

    os_ << ",\n{\"ph\":\"X\",\"pid\":" << pid_ << ",\"tid\":" << lane + 1
        << ",\"ts\":" << ts << ",\"dur\":" << dur << ",\"name\":\""
        << jsonEscape(mnemonic(ev.node->op))
        << "\",\"args\":{\"seq\":" << ev.seq << ",\"bseq\":" << ev.bseq
        << ",\"node\":\"" << jsonEscape(formatNode(*ev.node)) << "\"}}";
}

void
ChromeTraceSink::emitInstant(const SimEvent &ev)
{
    os_ << ",\n{\"ph\":\"i\",\"s\":\"g\",\"pid\":" << pid_
        << ",\"tid\":0,\"ts\":"
        << ev.cycle << ",\"name\":\"" << eventKindName(ev.kind) << " b#"
        << ev.bseq << "\",\"args\":{\"bseq\":" << ev.bseq
        << ",\"image\":" << ev.imageId << ",\"nodes\":" << ev.count
        << "}}";
}

void
ChromeTraceSink::onEvent(const SimEvent &ev)
{
    switch (ev.kind) {
      case EventKind::Schedule:
        emitSlice(ev);
        break;
      case EventKind::Squash:
      case EventKind::Retire:
      case EventKind::AssertFire:
        emitInstant(ev);
        break;
      case EventKind::Resolve:
        if (ev.mispredict)
            emitInstant(ev);
        break;
      default:
        break; // issue/complete/load events are too dense to chart
    }
}

} // namespace fgp::obs
