#include "bbe/enlarge.hh"

#include <algorithm>
#include <unordered_map>

#include "base/logging.hh"
#include "verify/postpass.hh"

namespace fgp {

namespace {

/**
 * Junction kind and successor pc when continuing past @p block toward
 * @p next_pc; fatal when @p next_pc is not a legal successor (used by
 * applyEnlargement to validate externally supplied plans).
 */
JunctionKind
junctionToward(const ImageBlock &block, std::int32_t next_pc)
{
    const Node *term = block.terminal();
    if (!term) {
        if (block.fallthroughPc != next_pc)
            fgp_fatal("enlargement plan: block at pc ", block.entryPc,
                      " cannot fall through to pc ", next_pc);
        return JunctionKind::FallThrough;
    }
    if (term->op == Opcode::J) {
        if (term->target != next_pc)
            fgp_fatal("enlargement plan: jump at pc ", term->origPc,
                      " does not target pc ", next_pc);
        return JunctionKind::Uncond;
    }
    if (isConditionalBranch(term->op)) {
        if (term->target == next_pc)
            return JunctionKind::CondHotTaken;
        if (block.fallthroughPc == next_pc)
            return JunctionKind::CondHotFall;
        fgp_fatal("enlargement plan: branch at pc ", term->origPc,
                  " has no arc to pc ", next_pc);
    }
    fgp_fatal("enlargement plan: block at pc ", block.entryPc,
              " ends in ", mnemonic(term->op),
              " and cannot be fused mid-chain");
}

} // namespace

int
condJunctionsFrom(const Chain &chain, std::size_t from)
{
    int count = 0;
    for (std::size_t i = from; i + 1 < chain.size(); ++i)
        if (chain[i].kind == JunctionKind::CondHotTaken ||
            chain[i].kind == JunctionKind::CondHotFall)
            ++count;
    return count;
}

Chain
resolveChain(const CodeImage &single, const EnlargeChain &planned)
{
    if (planned.entryPcs.size() < 2)
        fgp_fatal("enlargement plan: degenerate chain of ",
                  planned.entryPcs.size(), " blocks");
    Chain chain;
    chain.reserve(planned.entryPcs.size());
    for (std::size_t i = 0; i < planned.entryPcs.size(); ++i) {
        const std::int32_t id = single.blockAtPc(planned.entryPcs[i]);
        const ImageBlock &block = single.block(id);
        if (block.hasSyscall)
            fgp_fatal("enlargement plan: block at pc ", block.entryPc,
                      " contains a system call and cannot be fused");
        JunctionKind kind = JunctionKind::End;
        if (i + 1 < planned.entryPcs.size())
            kind = junctionToward(block, planned.entryPcs[i + 1]);
        chain.push_back({id, kind});
    }
    return chain;
}

EnlargePlan
planEnlargement(const CodeImage &single, const Profile &profile,
                const EnlargeOptions &opts)
{
    validateImage(single);

    // ---- rank candidate chain heads by the weight of their hottest arc.
    struct Head
    {
        std::int32_t blockId;
        std::uint64_t weight;
    };
    std::vector<Head> heads;
    for (const ImageBlock &block : single.blocks) {
        if (block.hasSyscall)
            continue;
        const Node *term = block.terminal();
        std::uint64_t weight = 0;
        if (term && isConditionalBranch(term->op)) {
            const auto it = profile.arcs.find(term->origPc);
            if (it != profile.arcs.end())
                weight = it->second.hot();
        } else if (term && term->op == Opcode::J) {
            const auto it = profile.jumps.find(term->origPc);
            if (it != profile.jumps.end())
                weight = it->second;
        } else if (!term && block.fallthroughPc >= 0) {
            weight = 1; // fall-through fusion is free but low priority
        }
        if (weight >= 1)
            heads.push_back({block.id, weight});
    }
    std::sort(heads.begin(), heads.end(), [](const Head &a, const Head &b) {
        if (a.weight != b.weight)
            return a.weight > b.weight;
        return a.blockId < b.blockId;
    });

    std::unordered_map<std::int32_t, int> instances; // orig block -> copies
    std::unordered_map<std::int32_t, bool> is_chain_head;
    EnlargePlan plan;

    for (const Head &head : heads) {
        if (is_chain_head.count(head.blockId))
            continue;

        // ---- grow the chain along dominant arcs.
        Chain chain{{head.blockId, JunctionKind::End}};
        std::int32_t cur = head.blockId;

        while (static_cast<int>(chain.size()) < opts.maxChainLen) {
            const ImageBlock &block = single.block(cur);
            const Node *term = block.terminal();

            JunctionKind kind;
            std::int32_t next_pc;
            if (!term) {
                if (block.fallthroughPc < 0)
                    break;
                kind = JunctionKind::FallThrough;
                next_pc = block.fallthroughPc;
            } else if (term->op == Opcode::J) {
                kind = JunctionKind::Uncond;
                next_pc = term->target;
            } else if (isConditionalBranch(term->op)) {
                const auto it = profile.arcs.find(term->origPc);
                if (it == profile.arcs.end())
                    break;
                const BranchArc &arc = it->second;
                if (arc.total() < opts.minArcCount)
                    break;
                const double ratio = static_cast<double>(arc.hot()) /
                                     static_cast<double>(arc.total());
                if (ratio < opts.minArcRatio)
                    break;
                kind = arc.hotIsTaken() ? JunctionKind::CondHotTaken
                                        : JunctionKind::CondHotFall;
                next_pc = arc.hotIsTaken() ? term->target
                                           : block.fallthroughPc;
            } else {
                break; // JAL / JR stop a chain
            }

            const auto next_it = single.entryByPc.find(next_pc);
            if (next_it == single.entryByPc.end())
                break;
            const ImageBlock &next_block = single.block(next_it->second);
            if (next_block.hasSyscall)
                break;

            // Trial: would instance caps hold if we extend?
            Chain trial = chain;
            trial.back().kind = kind;
            trial.push_back({next_block.id, JunctionKind::End});
            bool fits = true;
            std::unordered_map<std::int32_t, int> trial_copies;
            for (std::size_t j = 0; j < trial.size(); ++j)
                trial_copies[trial[j].blockId] +=
                    1 + condJunctionsFrom(trial, j);
            for (const auto &[id, copies] : trial_copies) {
                if (instances[id] + copies > opts.maxInstances) {
                    fits = false;
                    break;
                }
            }
            if (!fits)
                break;

            chain = std::move(trial);
            cur = next_block.id;
        }

        if (chain.size() < 2)
            continue;

        for (std::size_t j = 0; j < chain.size(); ++j)
            instances[chain[j].blockId] += 1 + condJunctionsFrom(chain, j);
        is_chain_head[head.blockId] = true;

        EnlargeChain planned;
        planned.entryPcs.reserve(chain.size());
        for (const ChainLink &link : chain)
            planned.entryPcs.push_back(single.block(link.blockId).entryPc);
        plan.chains.push_back(std::move(planned));
    }
    if (opts.auditHook)
        opts.auditHook(single, plan);
    return plan;
}

CodeImage
applyEnlargement(const CodeImage &single, const EnlargePlan &plan,
                 EnlargeStats *stats)
{
    validateImage(single);

    CodeImage out;
    out.prog = single.prog;
    out.blocks = single.blocks;   // originals keep their ids
    out.entryByPc = single.entryByPc;
    out.entryBlock = single.entryBlock;

    EnlargeStats local;
    std::uint64_t total_len = 0;

    for (const EnlargeChain &planned : plan.chains) {
        // Reconstruct block ids and junction kinds from the entry pcs.
        const Chain chain = resolveChain(single, planned);
        const ImageBlock &head_block = single.block(chain.front().blockId);
        if (out.entryByPc.at(head_block.entryPc) != head_block.id)
            fgp_fatal("enlargement plan: two chains start at pc ",
                      head_block.entryPc);

        // ---- build the primary block and its companions. Fault targets
        // point at companion blocks that do not exist yet, so allocate
        // all ids first.
        const auto primary_id = static_cast<std::int32_t>(out.blocks.size());
        std::vector<std::int32_t> companion_id(chain.size(), -1);
        {
            std::int32_t next_id = primary_id + 1;
            for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
                if (chain[i].kind == JunctionKind::CondHotTaken ||
                    chain[i].kind == JunctionKind::CondHotFall)
                    companion_id[i] = next_id++;
            }
        }

        /**
         * Append the nodes of chain member @p i to @p dst, converting an
         * embedded conditional terminal into a fault node.
         */
        auto append_member = [&](ImageBlock &dst, std::size_t i,
                                 bool embed_junction) {
            const ImageBlock &src = single.block(chain[i].blockId);
            const Node *term = src.terminal();
            const std::size_t body =
                term ? src.nodes.size() - 1 : src.nodes.size();
            for (std::size_t k = 0; k < body; ++k)
                dst.nodes.push_back(src.nodes[k]);
            if (!term)
                return;
            if (!embed_junction) {
                dst.nodes.push_back(*term);
                return;
            }
            switch (chain[i].kind) {
              case JunctionKind::Uncond:
                return; // dropped: fall into the next member
              case JunctionKind::CondHotTaken:
              case JunctionKind::CondHotFall: {
                // Fault when the branch leaves the chain.
                Node fault;
                fault.op =
                    chain[i].kind == JunctionKind::CondHotTaken
                        ? branchToFault(invertCondition(term->op))
                        : branchToFault(term->op);
                fault.rs1 = term->rs1;
                fault.rs2 = term->rs2;
                fault.target = companion_id[i];
                fault.origPc = term->origPc;
                dst.nodes.push_back(fault);
                ++local.faultNodes;
                return;
              }
              default:
                fgp_panic("unexpected junction kind");
            }
        };

        ImageBlock primary;
        primary.id = primary_id;
        primary.entryPc = head_block.entryPc;
        primary.enlarged = true;
        primary.chainLen = static_cast<std::int32_t>(chain.size());
        for (std::size_t i = 0; i < chain.size(); ++i)
            append_member(primary, i,
                          /*embed_junction=*/i + 1 < chain.size());
        primary.fallthroughPc =
            single.block(chain.back().blockId).fallthroughPc;
        out.blocks.push_back(std::move(primary));

        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            if (companion_id[i] < 0)
                continue;
            ImageBlock comp;
            comp.id = companion_id[i];
            comp.entryPc = head_block.entryPc;
            comp.enlarged = true;
            comp.companion = true;
            comp.chainLen = static_cast<std::int32_t>(i + 1);
            for (std::size_t j = 0; j < i; ++j)
                append_member(comp, j, /*embed_junction=*/true);
            {
                // Member i: its branch goes the COLD way here. Emit a
                // fault on the HOT direction pointing back at the
                // primary (Figure 1: AB and AC fault to each other),
                // then exit unconditionally along the cold arc.
                const ImageBlock &src = single.block(chain[i].blockId);
                const Node *junction = src.terminal();
                fgp_assert(junction && isConditionalBranch(junction->op),
                           "companion junction must be conditional");
                for (std::size_t k = 0; k + 1 < src.nodes.size(); ++k)
                    comp.nodes.push_back(src.nodes[k]);

                Node fault;
                fault.op =
                    chain[i].kind == JunctionKind::CondHotTaken
                        ? branchToFault(junction->op)
                        : branchToFault(invertCondition(junction->op));
                fault.rs1 = junction->rs1;
                fault.rs2 = junction->rs2;
                fault.target = primary_id;
                fault.origPc = junction->origPc;
                comp.nodes.push_back(fault);
                ++local.faultNodes;

                Node exit;
                exit.op = Opcode::J;
                exit.target =
                    chain[i].kind == JunctionKind::CondHotTaken
                        ? single.block(chain[i].blockId).fallthroughPc
                        : junction->target;
                exit.origPc = junction->origPc;
                comp.nodes.push_back(exit);
            }
            comp.fallthroughPc = -1;
            out.blocks.push_back(std::move(comp));
            ++local.companions;
        }

        out.entryByPc[head_block.entryPc] = primary_id;
        ++local.chains;
        total_len += chain.size();
        local.blocksFused += chain.size();
    }

    if (local.chains)
        local.meanChainLen =
            static_cast<double>(total_len) /
            static_cast<double>(local.chains);
    if (stats)
        *stats = local;

    out.entryBlock = out.blockAtPc(single.prog->entry);
    validateImage(out);
    verify::postEnlargementCheck(single, out, plan,
                                 EnlargeOptions{}.maxInstances);
    return out;
}

CodeImage
enlarge(const CodeImage &single, const Profile &profile,
        const EnlargeOptions &opts, EnlargeStats *stats)
{
    return applyEnlargement(single, planEnlargement(single, profile, opts),
                            stats);
}

} // namespace fgp
