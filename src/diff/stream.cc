#include "diff/stream.hh"

#include <cstdlib>
#include <fstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "metrics/manifest.hh"

namespace fgp::diff {

std::uint64_t
parseHash(const std::string &text)
{
    return std::strtoull(text.c_str(), nullptr, 16);
}

std::string
hashText(std::uint64_t hash)
{
    return format("0x%016llx", static_cast<unsigned long long>(hash));
}

const CellStream *
Stream::find(const std::string &key) const
{
    for (const CellStream &cell : cells)
        if (cell.key() == key)
            return &cell;
    return nullptr;
}

namespace {

std::uint64_t
u64(const metrics::GenericRecord &rec, const char *key)
{
    const double v = rec.num(key);
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

profile::EdgeKind
edgeFromName(const std::string &name)
{
    for (int e = 0; e <= static_cast<int>(profile::EdgeKind::Forward);
         ++e) {
        const auto kind = static_cast<profile::EdgeKind>(e);
        if (name == profile::edgeKindName(kind))
            return kind;
    }
    return profile::EdgeKind::None;
}

int
causeIndex(const std::string &name)
{
    for (std::size_t c = 0; c < profile::kCritCauseCount; ++c)
        if (name == profile::critCauseName(
                        static_cast<profile::CritCause>(c)))
            return static_cast<int>(c);
    return -1;
}

/** Fill the window fields shared by profile-v1 and run-v1 records. */
void
readWindow(CellWindow &win, const metrics::GenericRecord &rec)
{
    win.index = u64(rec, "index");
    win.startCycle = u64(rec, "start_cycle");
    win.cycles = u64(rec, "cycles");
    win.issuedNodes = u64(rec, "issued_nodes");
    win.retiredNodes = u64(rec, "retired_nodes");
    win.mispredicts = u64(rec, "mispredicts");
    for (std::size_t c = 0; c < kSlotCauseCount; ++c)
        win.slots[c] = u64(rec, kSlotCauseKeys[c]);
    for (std::size_t c = 0; c < kWaitCount; ++c)
        win.waits[c] = u64(rec, kWaitKeys[c]);
    if (rec.strs.count("sched_hash")) {
        win.hasHash = true;
        win.schedHash = parseHash(rec.str("sched_hash"));
    }
}

} // namespace

Stream
loadStream(std::istream &in, const std::string &what)
{
    Stream stream;
    // Cell being filled by trailing window/crit records. profile-v1
    // streams have exactly one; run-v1 windows name their cell, so the
    // loader re-targets by (workload, config) as records arrive.
    CellStream *current = nullptr;

    const auto cellFor = [&stream](const std::string &workload,
                                   const std::string &config) {
        for (CellStream &cell : stream.cells)
            if (cell.workload == workload && cell.config == config)
                return &cell;
        stream.cells.emplace_back();
        stream.cells.back().workload = workload;
        stream.cells.back().config = config;
        return &stream.cells.back();
    };

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string_view trimmed = trim(line);
        if (trimmed.empty() || trimmed.front() == '#')
            continue;
        const std::string where =
            format("%s:%zu", what.c_str(), lineno);
        const metrics::GenericRecord rec =
            metrics::parseJsonRecord(trimmed, where);
        const std::string kind = rec.str("kind");

        if (kind == "profile") {
            if (rec.str("schema") != "fgpsim-profile-v1")
                fgp_fatal(where, ": profile record is not ",
                          "fgpsim-profile-v1 (schema '",
                          rec.str("schema"), "')");
            stream.schema = "fgpsim-profile-v1";
            current = cellFor(rec.str("workload"), rec.str("config"));
            current->issueWidth = u64(rec, "issue_width");
            current->windowCycles = u64(rec, "window_cycles");
            current->cycles = u64(rec, "cycles");
            current->issuedNodes = u64(rec, "issued_nodes");
            current->retiredNodes = u64(rec, "retired_nodes");
            current->nodesPerCycle = rec.num("nodes_per_cycle");
            current->staticIpcBound = rec.num("static_ipc_bound");
            current->critPathCycles = u64(rec, "crit_path_cycles");
            current->critPathNodes = u64(rec, "crit_path_nodes");
            if (rec.strs.count("sched_hash")) {
                current->hasSchedHash = true;
                current->schedHash = parseHash(rec.str("sched_hash"));
            }
        } else if (kind == "run") {
            if (rec.str("schema") != metrics::kRunSchema)
                fgp_fatal(where, ": run record is not ",
                          metrics::kRunSchema, " (schema '",
                          rec.str("schema"), "')");
            stream.schema = metrics::kRunSchema;
        } else if (kind == "point") {
            CellStream *cell =
                cellFor(rec.str("workload"), rec.str("config"));
            cell->cycles = u64(rec, "cycles");
            cell->issuedNodes = u64(rec, "issued_nodes");
            cell->issueWidth = u64(rec, "issue_width");
            cell->nodesPerCycle = rec.num("nodes_per_cycle");
            cell->retiredNodes = static_cast<std::uint64_t>(
                rec.num("nodes_per_cycle") *
                    static_cast<double>(cell->cycles) +
                0.5);
            cell->staticIpcBound = rec.num("static_ipc_bound");
            cell->critPathCycles = u64(rec, "crit_path_cycles");
            for (std::size_t c = 0; c < kSlotCauseCount; ++c)
                cell->aggSlots[c] = u64(rec, kSlotCauseKeys[c]);
            for (std::size_t c = 0; c < kWaitCount; ++c)
                cell->aggWaits[c] = u64(rec, kWaitKeys[c]);
            cell->hasAgg = cell->issueWidth > 0;
        } else if (kind == "window") {
            CellStream *cell = current;
            if (rec.strs.count("workload"))
                cell = cellFor(rec.str("workload"), rec.str("config"));
            if (!cell)
                fgp_fatal(where, ": window record before any header");
            cell->windows.emplace_back();
            readWindow(cell->windows.back(), rec);
        } else if (kind == "critpath") {
            if (!current)
                fgp_fatal(where, ": critpath record before any header");
            current->causeCycles[rec.str("cause")] = u64(rec, "cycles");
        } else if (kind == "critblock" || kind == "critedge") {
            if (!current)
                fgp_fatal(where, ": ", kind,
                          " record before any header");
            CellBlock &block = current->blocks[static_cast<std::uint32_t>(
                u64(rec, "block"))];
            block.entryPc = static_cast<std::int64_t>(
                rec.num("entry_pc", -1.0));
            if (kind == "critblock") {
                block.pathCycles = u64(rec, "path_cycles");
                block.retiredNodes = u64(rec, "retired_nodes");
            } else {
                const int c = causeIndex(rec.str("cause"));
                if (c < 0)
                    fgp_fatal(where, ": unknown critedge cause '",
                              rec.str("cause"), "'");
                block.causes[static_cast<std::size_t>(c)] =
                    u64(rec, "cycles");
                block.hasCauses = true;
            }
        } else if (kind == "retired") {
            if (!current)
                fgp_fatal(where, ": retired record before any header");
            profile::RetiredNode n;
            n.seq = u64(rec, "seq");
            n.parentSeq = u64(rec, "parent_seq");
            n.issueCycle =
                static_cast<std::uint32_t>(u64(rec, "issue_cycle"));
            n.readyCycle =
                static_cast<std::uint32_t>(u64(rec, "ready_cycle"));
            n.schedCycle =
                static_cast<std::uint32_t>(u64(rec, "sched_cycle"));
            n.completeCycle =
                static_cast<std::uint32_t>(u64(rec, "complete_cycle"));
            n.block = static_cast<std::uint32_t>(u64(rec, "block"));
            n.edge = edgeFromName(rec.str("edge"));
            current->retired.push_back(n);
        } else if (kind == "residency" || kind == "progress") {
            // Residency refines windows the differ already has; progress
            // heartbeats may be interleaved into captured logs.
        } else {
            fgp_fatal(where, ": unknown record kind '", kind, "'");
        }
    }

    if (stream.schema.empty())
        fgp_fatal(what, ": no fgpsim-profile-v1 or ", metrics::kRunSchema,
                  " header record found");
    if (stream.cells.empty())
        fgp_fatal(what, ": stream has no (workload, config) cells");

    // A critblock marginal can arrive without critedge rows (older
    // streams); when critedge rows exist, derive the marginal from them
    // so both views agree no matter which records the stream carried.
    for (CellStream &cell : stream.cells) {
        for (auto &[id, block] : cell.blocks) {
            if (!block.hasCauses)
                continue;
            std::uint64_t row = 0;
            for (const std::uint64_t c : block.causes)
                row += c;
            block.pathCycles = row;
        }
        // Manifest cells without per-window records still diff with a
        // zero-residual breakdown: the run totals are one big window.
        if (cell.windows.empty() && cell.hasAgg) {
            CellWindow win;
            win.index = 0;
            win.cycles = cell.cycles;
            win.issuedNodes = cell.issuedNodes;
            win.retiredNodes = cell.retiredNodes;
            win.slots = cell.aggSlots;
            win.waits = cell.aggWaits;
            cell.windows.push_back(win);
        }
    }
    return stream;
}

Stream
loadStreamFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fgp_fatal("cannot read '", path, "'");
    return loadStream(in, path);
}

} // namespace fgp::diff
