/**
 * @file
 * The cycle-level run-time simulator (the paper's "sim", §3.1).
 *
 * Execution-driven: nodes compute real values on speculative state, so
 * run-time memory disambiguation, wrong-path execution and fault repair
 * behave like the modeled hardware. One simulate() call evaluates one
 * machine configuration on one translated image:
 *
 *  - fetch/issue: one multi-node word per cycle from the current basic
 *    block; entering a new block requires window occupancy below the
 *    discipline's cap; branch prediction (2-bit counter BTB + BTFN, or the
 *    perfect trace) selects the next block;
 *  - dynamic scheduling: register renaming at issue; dataflow wakeup;
 *    oldest-first selection onto the word-shaped function units (M memory
 *    ports, A ALUs, fully pipelined);
 *  - static scheduling: the compiler's words execute strictly in order
 *    with a full interlock (a word waits until every node in it has its
 *    operands);
 *  - loads disambiguate at run time against the in-window store queue
 *    (byte-accurate forwarding); stores commit to the write buffer at
 *    block retirement;
 *  - speculative execution: per-block checkpoint repair — a mispredicted
 *    branch squashes younger blocks, a firing fault node squashes its own
 *    block too and redirects to the fault-to companion.
 */

#ifndef FGP_ENGINE_ENGINE_HH
#define FGP_ENGINE_ENGINE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "arch/config.hh"
#include "base/histogram.hh"
#include "base/stats.hh"
#include "branch/predictor_opts.hh"
#include "ir/image.hh"
#include "vm/memory.hh"
#include "vm/simos.hh"

namespace fgp {

/** Options for one simulation. */
struct EngineOptions
{
    MachineConfig config;

    /**
     * Committed-block trace for BranchMode::Perfect (produced by
     * runAtomic with recordTrace on the same image). Ignored otherwise.
     */
    const std::vector<std::int32_t> *perfectTrace = nullptr;

    /** Runaway guard. */
    std::uint64_t maxCycles = 4'000'000'000ULL;

    /** Branch prediction configuration (BTB size, static hints, RAS). */
    PredictorOptions predictor = {};

    /**
     * Extension (paper §3.1 closing remark): predict on faults so that
     * repeated faults cause control transfers to start with an alternate
     * enlarged instance instead of the primary one.
     */
    bool predictFaultTargets = false;

    /** Override the window size in basic blocks (0: per discipline). */
    int windowOverride = 0;

    /**
     * Ablation (§2.1): conservative memory disambiguation — a load waits
     * until every older in-window store has executed, instead of
     * checking addresses at run time.
     */
    bool conservativeLoads = false;

    /**
     * Cycles lost redirecting fetch after a misprediction or fault
     * (default kRedirectPenalty); higher values model deeper front ends.
     */
    int redirectPenalty = kRedirectPenalty;

    /**
     * Cycle-by-cycle pipeline trace (issue / execute / complete /
     * resolve / squash / retire events) written to this stream when
     * non-null. Intended for small programs.
     */
    std::ostream *trace = nullptr;
};

/** Result of one simulation. */
struct EngineResult
{
    bool exited = false;
    int exitCode = 0;

    std::uint64_t cycles = 0;
    std::uint64_t retiredNodes = 0;   ///< nodes in committed blocks
    std::uint64_t executedNodes = 0;  ///< scheduled on FUs (incl. squashed)
    std::uint64_t issuedNodes = 0;
    std::uint64_t committedBlocks = 0;
    std::uint64_t squashedBlocks = 0;
    std::uint64_t faultsFired = 0;
    std::uint64_t branchesResolved = 0;
    std::uint64_t mispredicts = 0;

    /** Committed basic block sizes (Figure 2). */
    Histogram blockSize{4, 32};

    /** Window occupancy in blocks, sampled each cycle. */
    Histogram windowOccupancy{1, 64};

    /**
     * The paper's three operation-based window measures (§2.2), sampled
     * each cycle: valid = issued but not retired; active = issued but
     * not yet scheduled; ready = active and schedulable.
     */
    Histogram validNodes{16, 64};
    Histogram activeNodes{16, 64};
    Histogram readyNodes{4, 64};

    /** Detailed counters (cache, predictor, issue stalls...). */
    StatGroup stats;

    double
    nodesPerCycle() const
    {
        return cycles ? static_cast<double>(retiredNodes) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of executed nodes that never retired (Figure 6). */
    double
    redundancy() const
    {
        return executedNodes
                   ? 1.0 - static_cast<double>(retiredNodes) /
                               static_cast<double>(executedNodes)
                   : 0.0;
    }
};

/**
 * Simulate @p image (already translated for @p opts.config) against @p os.
 * The image's words must be filled. Architectural results (stdout, exit
 * code, memory) equal the functional VM's — asserted by the test suite.
 */
EngineResult simulate(const CodeImage &image, SimOS &os,
                      const EngineOptions &opts);

} // namespace fgp

#endif // FGP_ENGINE_ENGINE_HH
