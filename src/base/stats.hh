/**
 * @file
 * Lightweight named-statistics registry. Every simulator component exposes
 * its counters through a StatGroup so harness code can dump a uniform
 * name/value listing without knowing component internals.
 */

#ifndef FGP_BASE_STATS_HH
#define FGP_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace fgp {

/** Ordered collection of scalar statistics. */
class StatGroup
{
  public:
    /** Set (or overwrite) an integer statistic. */
    void set(const std::string &name, std::uint64_t value);

    /** Set (or overwrite) a floating point statistic. */
    void setReal(const std::string &name, double value);

    /** Add to an integer statistic (creating it at zero). */
    void add(const std::string &name, std::uint64_t delta);

    /** Integer statistic value; 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** Floating point statistic value; falls back to integer; 0 if absent. */
    double getReal(const std::string &name) const;

    bool has(const std::string &name) const;

    /** Merge: integer stats summed, real stats overwritten. */
    void mergeFrom(const StatGroup &other);

    /** Dump "name value" lines, sorted by name. */
    void print(std::ostream &os, const std::string &prefix = "") const;

    const std::map<std::string, std::uint64_t> &ints() const { return ints_; }
    const std::map<std::string, double> &reals() const { return reals_; }

  private:
    std::map<std::string, std::uint64_t> ints_;
    std::map<std::string, double> reals_;
};

} // namespace fgp

#endif // FGP_BASE_STATS_HH
