/**
 * @file
 * Assembly sources of the five benchmarks (without the shared runtime).
 */

#ifndef FGP_WORKLOADS_BENCH_ASM_HH
#define FGP_WORKLOADS_BENCH_ASM_HH

namespace fgp {

extern const char *const kSortAsm;
extern const char *const kGrepAsm;
extern const char *const kDiffAsm;
extern const char *const kCppAsm;
extern const char *const kCompressAsm;

} // namespace fgp

#endif // FGP_WORKLOADS_BENCH_ASM_HH
