/**
 * Pipeline-trace tests: the trace stream doubles as a precise timing
 * observable, so these tests pin down cycle-level behaviours (issue
 * cadence, load latency, back-to-back ALU dependencies, squash events)
 * that coarse statistics cannot.
 */

#include <gtest/gtest.h>

#include <regex>
#include <sstream>

#include "base/logging.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "obs/bus.hh"
#include "obs/sinks.hh"
#include "tld/translate.hh"

namespace fgp {
namespace {

struct Traced
{
    EngineResult result;
    std::string trace;
};

Traced
tracedRun(const std::string &source, const MachineConfig &config)
{
    const Program prog = assemble(source, "trace-test");
    CodeImage image = buildCfg(prog);
    translate(image, config);
    SimOS os;
    std::ostringstream trace;
    obs::TextTraceSink sink(trace);
    obs::EventBus bus;
    bus.addSink(&sink);
    EngineOptions opts;
    opts.config = config;
    opts.bus = &bus;
    Traced out;
    out.result = simulate(image, os, opts);
    out.trace = trace.str();
    return out;
}

/** Cycle number of the first trace line matching @p pattern, or -1. */
long
cycleOf(const std::string &trace, const std::string &pattern)
{
    const std::regex line_re("\\[(\\d+)\\] (.*)");
    const std::regex want(pattern);
    std::istringstream in(trace);
    std::string line;
    while (std::getline(in, line)) {
        std::smatch match;
        if (std::regex_match(line, match, line_re) &&
            std::regex_search(line, want))
            return std::stol(match[1]);
    }
    return -1;
}

int
countOf(const std::string &trace, const std::string &pattern)
{
    const std::regex want(pattern);
    int count = 0;
    std::istringstream in(trace);
    std::string line;
    while (std::getline(in, line))
        count += std::regex_search(line, want) ? 1 : 0;
    return count;
}

MachineConfig
cfg(Discipline d, int issue, char mem)
{
    return {d, issueModel(issue), memoryConfig(mem), BranchMode::Single};
}

TEST(Trace, EventKindsPresent)
{
    const Traced t = tracedRun(R"(
main:   li   r8, 2
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)",
                               cfg(Discipline::Dyn4, 8, 'A'));
    EXPECT_GT(countOf(t.trace, "issue"), 0);
    EXPECT_GT(countOf(t.trace, "exec"), 0);
    EXPECT_GT(countOf(t.trace, "done"), 0);
    EXPECT_GT(countOf(t.trace, "retire"), 0);
    EXPECT_GT(countOf(t.trace, "branch"), 0);
}

TEST(Trace, CyclesAreMonotonic)
{
    const Traced t = tracedRun(R"(
main:   li   r8, 5
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)",
                               cfg(Discipline::Dyn256, 8, 'G'));
    const std::regex line_re("\\[(\\d+)\\].*");
    long last = -1;
    std::istringstream in(t.trace);
    std::string line;
    while (std::getline(in, line)) {
        std::smatch match;
        ASSERT_TRUE(std::regex_match(line, match, line_re)) << line;
        const long cycle = std::stol(match[1]);
        EXPECT_GE(cycle, last);
        last = cycle;
    }
}

TEST(Trace, BackToBackDependentAluOps)
{
    // add r2 <- r1 executes the cycle after li r1 completes.
    const Traced t = tracedRun(R"(
main:   li   r1, 7
        add  r2, r1, r1
        add  r3, r2, r2
        li   v0, 0
        li   a0, 0
        syscall
)",
                               cfg(Discipline::Dyn256, 8, 'A'));
    const long e1 = cycleOf(t.trace, "exec.*addi r1");
    const long e2 = cycleOf(t.trace, "exec.*add r2");
    const long e3 = cycleOf(t.trace, "exec.*add r3");
    ASSERT_GE(e1, 0);
    EXPECT_EQ(e2, e1 + 1);
    EXPECT_EQ(e3, e2 + 1);
}

TEST(Trace, LoadMissLatencyVisible)
{
    // Config D: first access to a line misses (10 cycles).
    const Traced t = tracedRun(R"(
main:   la   r1, data
        lw   r2, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
data:   .word 42
)",
                               cfg(Discipline::Dyn4, 8, 'D'));
    EXPECT_GT(countOf(t.trace, "exec.*lw.*latency=10"), 0);
    const long exec = cycleOf(t.trace, "exec.*lw r2");
    const long done = cycleOf(t.trace, "done.*lw value=42");
    ASSERT_GE(exec, 0);
    ASSERT_GE(done, 0);
    EXPECT_EQ(done, exec + 10);
}

TEST(Trace, ForwardedLoadMarked)
{
    const Traced t = tracedRun(R"(
main:   la   r1, data
        li   r2, 9
        sw   r2, 0(r1)
        lw   r3, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
data:   .word 0
)",
                               cfg(Discipline::Dyn4, 8, 'D'));
    EXPECT_GT(countOf(t.trace, "exec.*lw.*forwarded"), 0);
}

TEST(Trace, MispredictEmitsSquash)
{
    const Traced t = tracedRun(R"(
main:   li   r8, 12
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)",
                               cfg(Discipline::Dyn256, 8, 'A'));
    // The loop exit mispredicts once the counter saturates taken.
    EXPECT_GT(countOf(t.trace, "MISPREDICT"), 0);
    EXPECT_GT(countOf(t.trace, "squash"), 0);
}

TEST(Trace, OneIssueWordPerCycle)
{
    const Traced t = tracedRun(R"(
main:   li   r8, 4
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)",
                               cfg(Discipline::Dyn4, 2, 'A'));
    // No two issue events may share a cycle.
    const std::regex issue_re("\\[(\\d+)\\] issue");
    std::istringstream in(t.trace);
    std::string line;
    long last_issue = -1;
    while (std::getline(in, line)) {
        std::smatch match;
        if (std::regex_search(line, match, issue_re)) {
            const long cycle = std::stol(match[1]);
            EXPECT_GT(cycle, last_issue);
            last_issue = cycle;
        }
    }
}

TEST(Trace, RedirectPenaltyConfigurable)
{
    const char *source = R"(
main:   li   r8, 30
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)";
    const Program prog = assemble(source);
    auto cycles_with_penalty = [&](int penalty) {
        MachineConfig config = cfg(Discipline::Dyn4, 8, 'A');
        CodeImage image = buildCfg(prog);
        translate(image, config);
        SimOS os;
        EngineOptions opts;
        opts.config = config;
        opts.redirectPenalty = penalty;
        return simulate(image, os, opts).cycles;
    };
    EXPECT_LT(cycles_with_penalty(1), cycles_with_penalty(8));
}

TEST(Trace, OffByDefaultNoOutput)
{
    // Without a trace stream the engine must not touch one (smoke: the
    // default path just runs).
    const Program prog = assemble("main: li v0, 0\nli a0, 0\nsyscall\n");
    MachineConfig config = cfg(Discipline::Dyn4, 8, 'A');
    CodeImage image = buildCfg(prog);
    translate(image, config);
    SimOS os;
    EngineOptions opts;
    opts.config = config;
    const EngineResult r = simulate(image, os, opts);
    EXPECT_TRUE(r.exited);
}

} // namespace
} // namespace fgp
