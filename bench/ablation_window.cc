/**
 * @file
 * Ablation: instruction-window size in active basic blocks (§2.2). The
 * paper samples windows of 1, 4 and 256; this sweep fills in the curve
 * and shows where the knee sits for single and enlarged basic blocks.
 * Issue model 8, memory A.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Ablation: window size",
           "dynamic scheduling, issue model 8, memory A");

    const std::vector<int> windows = {1, 2, 4, 8, 16, 32, 64, 128, 256};

    std::vector<std::string> header = {"blocks in window"};
    for (int w : windows)
        header.push_back(std::to_string(w));
    Table table(std::move(header));

    for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged}) {
        std::vector<double> row;
        for (int w : windows) {
            ExperimentRunner runner(envScale());
            ExperimentRunner::EngineTweaks tweaks;
            tweaks.windowOverride = w;
            runner.setEngineTweaks(tweaks);
            const MachineConfig config{Discipline::Dyn256, issueModel(8),
                                       memoryConfig('A'), bm};
            row.push_back(runner.meanNodesPerCycle(config));
        }
        table.addNumericRow(branchModeName(bm), row);
    }
    table.print(std::cout);
    std::cout << "\nThe paper's observation: window 4 comes close to "
                 "window 256 — prediction accuracy, not window capacity, "
                 "limits realistic machines.\n";
    return 0;
}
