/** Basic block enlargement tests: structure, caps, semantics. */

#include <gtest/gtest.h>

#include "base/logging.hh"

#include "bbe/enlarge.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"

namespace fgp {
namespace {

/** Loop whose body branches the same way most iterations. */
Program
loopProgram()
{
    return assemble(R"(
main:   li   r8, 0           # i
        li   r9, 100         # n
        li   r10, 0          # even accumulator
        li   r11, 0          # multiple-of-7 accumulator
loop:   andi r12, r8, 1
        bnez r12, odd        # taken half of the time
        addi r10, r10, 1
odd:    li   r13, 7
        rem  r14, r8, r13
        bnez r14, next       # heavily biased: taken 6/7
        addi r11, r11, 1
next:   addi r8, r8, 1
        blt  r8, r9, loop    # heavily biased: taken
        la   r1, out
        sw   r10, 0(r1)
        sw   r11, 4(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
out:    .space 8
)");
}

Profile
profileOf(const Program &prog)
{
    Profile profile;
    SimOS os;
    InterpOptions opts;
    opts.profile = &profile;
    interpret(prog, os, opts);
    return profile;
}

TEST(Bbe, BuildsChainsAlongHotArcs)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    EnlargeStats stats;
    const CodeImage enlarged = enlarge(single, profile, {}, &stats);

    EXPECT_GT(stats.chains, 0u);
    EXPECT_GT(stats.companions, 0u);
    EXPECT_GT(stats.faultNodes, 0u);
    EXPECT_GT(enlarged.blocks.size(), single.blocks.size());
    EXPECT_GT(stats.meanChainLen, 1.0);
}

TEST(Bbe, EnlargedBlocksMarkedAndMapped)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    const CodeImage enlarged = enlarge(single, profile);

    // Originals keep their ids; new blocks are flagged.
    for (std::size_t i = 0; i < single.blocks.size(); ++i) {
        EXPECT_FALSE(enlarged.blocks[i].enlarged);
        EXPECT_EQ(enlarged.blocks[i].id, single.blocks[i].id);
    }
    bool saw_primary = false;
    bool saw_companion = false;
    for (std::size_t i = single.blocks.size(); i < enlarged.blocks.size();
         ++i) {
        const ImageBlock &block = enlarged.blocks[i];
        EXPECT_TRUE(block.enlarged);
        saw_primary |= !block.companion;
        saw_companion |= block.companion;
        // Companions are never entry-mapped.
        if (block.companion) {
            for (const auto &[pc, id] : enlarged.entryByPc) {
                EXPECT_NE(id, block.id);
            }
        }
    }
    EXPECT_TRUE(saw_primary);
    EXPECT_TRUE(saw_companion);
}

TEST(Bbe, FaultTargetsAreMutual)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    const CodeImage enlarged = enlarge(single, profile);

    for (const ImageBlock &block : enlarged.blocks) {
        for (const Node &node : block.nodes) {
            if (!node.isFault())
                continue;
            const ImageBlock &target = enlarged.block(node.target);
            EXPECT_TRUE(target.enlarged);
            if (block.companion) {
                // A companion's final fault points back at a primary.
                EXPECT_TRUE(!target.companion || target.id != block.id);
            } else {
                // Primaries fault into companions.
                EXPECT_TRUE(target.companion);
            }
        }
    }
}

TEST(Bbe, SemanticsPreserved)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    const CodeImage enlarged = enlarge(single, profile);

    SimOS os_ref;
    SparseMemory mem_ref;
    interpret(prog, os_ref, mem_ref);

    SimOS os_en;
    SparseMemory mem_en;
    const AtomicRunResult r = runAtomic(enlarged, os_en, mem_en);

    EXPECT_TRUE(r.exited);
    EXPECT_EQ(mem_en.read32(prog.dataLabels.at("out")),
              mem_ref.read32(prog.dataLabels.at("out")));
    EXPECT_EQ(mem_en.read32(prog.dataLabels.at("out") + 4),
              mem_ref.read32(prog.dataLabels.at("out") + 4));
    // Faults fired (the 50/50 branch is not fused, but mod-7 is, and its
    // fault fires roughly every 7th iteration when fused).
    EXPECT_GT(r.faults, 0u);
    EXPECT_GT(r.discardedNodes, 0u);
}

TEST(Bbe, RatioThresholdStopsFusion)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    EnlargeOptions strict;
    strict.minArcRatio = 1.01; // nothing qualifies
    EnlargeStats stats;
    const CodeImage enlarged = enlarge(single, profile, strict, &stats);
    EXPECT_EQ(stats.faultNodes, 0u);
    // Unconditional-jump / fall-through fusion may still occur; no
    // conditional arcs may be embedded.
    for (const ImageBlock &block : enlarged.blocks)
        for (const Node &node : block.nodes)
            EXPECT_FALSE(node.isFault());
}

TEST(Bbe, CountThresholdStopsFusion)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    EnlargeOptions strict;
    strict.minArcCount = 1u << 30;
    EnlargeStats stats;
    enlarge(single, profile, strict, &stats);
    EXPECT_EQ(stats.faultNodes, 0u);
}

TEST(Bbe, ChainLengthCapRespected)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    for (int cap : {2, 3, 8}) {
        EnlargeOptions opts;
        opts.maxChainLen = cap;
        const CodeImage enlarged = enlarge(single, profile, opts);
        for (const ImageBlock &block : enlarged.blocks)
            EXPECT_LE(block.chainLen, cap);
    }
}

TEST(Bbe, InstanceCapRespected)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    EnlargeOptions opts;
    opts.maxInstances = 2;
    const CodeImage enlarged = enlarge(single, profile, opts);

    // Count copies of each original entry pc across enlarged blocks by
    // walking node origin pcs at block entries of chain members.
    std::unordered_map<std::int32_t, int> copies;
    for (const ImageBlock &block : enlarged.blocks) {
        if (!block.enlarged)
            continue;
        for (std::size_t i = 0; i < block.nodes.size(); ++i) {
            const std::int32_t pc = block.nodes[i].origPc;
            if (enlarged.entryByPc.count(pc) &&
                (i == 0 || block.nodes[i - 1].origPc != pc - 1))
                ++copies[pc];
        }
    }
    for (const auto &[pc, count] : copies)
        EXPECT_LE(count, 2) << "entry pc " << pc;
}

TEST(Bbe, SyscallBlocksNeverFused)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    const CodeImage enlarged = enlarge(single, profile);
    for (const ImageBlock &block : enlarged.blocks)
        EXPECT_FALSE(block.enlarged && block.hasSyscall);
}

TEST(Bbe, LoopUnrollingDuplicatesBody)
{
    // A tight counted loop: the back arc is taken 31/32 times, so the
    // chain should wrap around the loop body several times.
    const Program prog = assemble(R"(
main:   li   r8, 0
        li   r9, 128
        li   r10, 0
loop:   add  r10, r10, r8
        addi r8, r8, 1
        blt  r8, r9, loop
        la   r1, out
        sw   r10, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
out:    .word 0
)");
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    EnlargeStats stats;
    const CodeImage enlarged = enlarge(single, profile, {}, &stats);

    // Find the primary instance of the loop body and count how many
    // copies of the body it contains.
    const std::int32_t loop_pc = prog.codeLabels.at("loop");
    const std::int32_t primary = enlarged.blockAtPc(loop_pc);
    const ImageBlock &block = enlarged.block(primary);
    ASSERT_TRUE(block.enlarged);
    int body_copies = 0;
    for (const Node &node : block.nodes)
        body_copies += node.origPc == loop_pc;
    EXPECT_GE(body_copies, 2) << "loop body was not unrolled";

    // Unrolled semantics intact.
    SimOS os_ref;
    SparseMemory mem_ref;
    interpret(prog, os_ref, mem_ref);
    SimOS os_en;
    SparseMemory mem_en;
    runAtomic(enlarged, os_en, mem_en);
    EXPECT_EQ(mem_en.read32(prog.dataLabels.at("out")),
              mem_ref.read32(prog.dataLabels.at("out")));
}

TEST(Bbe, EntryRedirectsToPrimary)
{
    const Program prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    const CodeImage enlarged = enlarge(single, profile);

    // The mod-7 branch block (label "odd") is heavily biased, so its
    // entry must be redirected to an enlarged primary instance.
    const std::int32_t odd_pc = prog.codeLabels.at("odd");
    const std::int32_t mapped = enlarged.blockAtPc(odd_pc);
    EXPECT_TRUE(enlarged.block(mapped).enlarged);
    EXPECT_FALSE(enlarged.block(mapped).companion);
}

} // namespace
} // namespace fgp
