# Empty dependencies file for ilp_limits.
# This may be replaced when dependencies are built.
