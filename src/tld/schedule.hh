/**
 * @file
 * Packing of block nodes into multi-node issue words.
 *
 * Static machines get a latency-aware list schedule over the dependence
 * DAG (the compiler fills the node slots, §2.1, assuming cache-hit
 * latency); dynamic machines get order-preserving greedy packing — the
 * hardware decouples the nodes after issue, so only issue bandwidth
 * matters. The sequential issue model packs one node per word.
 */

#ifndef FGP_TLD_SCHEDULE_HH
#define FGP_TLD_SCHEDULE_HH

#include "arch/config.hh"
#include "ir/image.hh"

namespace fgp {

/** Fill @p block.words for a statically scheduled machine. */
void scheduleStatic(ImageBlock &block, const IssueModel &issue,
                    int mem_hit_latency);

/** Fill @p block.words for a dynamically scheduled machine. */
void packDynamic(ImageBlock &block, const IssueModel &issue);

/**
 * True when @p block.words is a valid packing: every node in exactly one
 * word, slot shapes respected, and (for static schedules) all dependence
 * edges point to the same or a later word. Used by tests.
 */
bool wordsRespectModel(const ImageBlock &block, const IssueModel &issue);

} // namespace fgp

#endif // FGP_TLD_SCHEDULE_HH
