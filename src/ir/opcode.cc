#include "ir/opcode.hh"

#include <array>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

namespace {

constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NUM_OPCODES);

constexpr std::array<OpcodeInfo, kNumOpcodes> kInfo = {{
    // mnemonic  class              form                  load   store
    {"add",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sub",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"and",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"or",    NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"xor",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sll",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"srl",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sra",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"mul",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"div",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"rem",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"slt",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sltu",  NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"addi",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"andi",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"ori",   NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"xori",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"slli",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"srli",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"srai",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"slti",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"sltiu", NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"lui",   NodeClass::IntAlu, OperandForm::RI,       false, false},
    {"lw",    NodeClass::Mem,    OperandForm::Load,     true,  false},
    {"lb",    NodeClass::Mem,    OperandForm::Load,     true,  false},
    {"lbu",   NodeClass::Mem,    OperandForm::Load,     true,  false},
    {"sw",    NodeClass::Mem,    OperandForm::Store,    false, true},
    {"sb",    NodeClass::Mem,    OperandForm::Store,    false, true},
    {"beq",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"bne",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"blt",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"bge",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"bltu",  NodeClass::Control, OperandForm::Branch,  false, false},
    {"bgeu",  NodeClass::Control, OperandForm::Branch,  false, false},
    {"j",     NodeClass::Control, OperandForm::Jump,    false, false},
    {"jal",   NodeClass::Control, OperandForm::JumpLink, false, false},
    {"jr",    NodeClass::Control, OperandForm::JumpReg, false, false},
    {"syscall", NodeClass::Sys,  OperandForm::System,   false, false},
    {"feq",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fne",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"flt",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fge",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fltu",  NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fgeu",  NodeClass::Fault,  OperandForm::FaultF,   false, false},
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    fgp_assert(idx < kNumOpcodes, "bad opcode ", idx);
    return kInfo[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

std::optional<Opcode>
opcodeFromMnemonic(std::string_view text)
{
    static const auto *table = [] {
        auto *map = new std::unordered_map<std::string, Opcode>();
        for (std::size_t i = 0; i < kNumOpcodes; ++i)
            map->emplace(std::string(kInfo[i].mnemonic),
                         static_cast<Opcode>(i));
        return map;
    }();
    const auto it = table->find(toLower(text));
    if (it == table->end())
        return std::nullopt;
    return it->second;
}

Opcode
branchToFault(Opcode op)
{
    fgp_assert(isConditionalBranch(op), "not a conditional branch");
    return static_cast<Opcode>(static_cast<int>(Opcode::FEQ) +
                               (static_cast<int>(op) -
                                static_cast<int>(Opcode::BEQ)));
}

Opcode
faultToBranch(Opcode op)
{
    fgp_assert(isFault(op), "not a fault node");
    return static_cast<Opcode>(static_cast<int>(Opcode::BEQ) +
                               (static_cast<int>(op) -
                                static_cast<int>(Opcode::FEQ)));
}

Opcode
invertCondition(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: return Opcode::BNE;
      case Opcode::BNE: return Opcode::BEQ;
      case Opcode::BLT: return Opcode::BGE;
      case Opcode::BGE: return Opcode::BLT;
      case Opcode::BLTU: return Opcode::BGEU;
      case Opcode::BGEU: return Opcode::BLTU;
      case Opcode::FEQ: return Opcode::FNE;
      case Opcode::FNE: return Opcode::FEQ;
      case Opcode::FLT: return Opcode::FGE;
      case Opcode::FGE: return Opcode::FLT;
      case Opcode::FLTU: return Opcode::FGEU;
      case Opcode::FGEU: return Opcode::FLTU;
      default:
        fgp_panic("opcode has no condition to invert: ", mnemonic(op));
    }
}

} // namespace fgp
