# Empty dependencies file for fgpsim_cli.
# This may be replaced when dependencies are built.
