/** Translating-loader tests: optimizer passes, dependence DAG, schedulers. */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/logging.hh"

#include "base/rng.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/depgraph.hh"
#include "tld/optimizer.hh"
#include "tld/schedule.hh"
#include "tld/translate.hh"
#include "vm/atomic_runner.hh"

namespace fgp {
namespace {

/** Build the single-block image of an assembly fragment. */
CodeImage
imageOf(const Program &prog)
{
    return buildCfg(prog);
}

TEST(Optimizer, CopyPropagation)
{
    Program prog = assemble(R"(
main:   li   r1, 5
        mov  r2, r1
        add  r3, r2, r2
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.rename = false;
    opts.eliminateDead = false;
    const OptimizerStats stats = optimizeBlock(block, opts);
    EXPECT_GT(stats.propagated, 0u);
    // add became a fully-folded constant (5+5) since r1 is constant.
    bool found_const_10 = false;
    for (const Node &node : block.nodes)
        if (node.op == Opcode::ADDI && node.rs1 == kRegZero &&
            node.imm == 10 && node.rd == 3)
            found_const_10 = true;
    EXPECT_TRUE(found_const_10);
}

TEST(Optimizer, ConstantFoldingAndStrengthReduction)
{
    Program prog = assemble(R"(
main:   li   r1, 12
        li   r2, 3
        mul  r3, r1, r2
        add  r4, r5, r2
        sub  r6, r5, r2
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.rename = false;
    opts.eliminateDead = false;
    optimizeBlock(block, opts);

    bool mul_folded = false;
    bool add_reduced = false;
    bool sub_reduced = false;
    for (const Node &node : block.nodes) {
        if (node.rd == 3 && node.op == Opcode::ADDI &&
            node.rs1 == kRegZero && node.imm == 36)
            mul_folded = true;
        if (node.rd == 4 && node.op == Opcode::ADDI && node.rs1 == 5 &&
            node.imm == 3)
            add_reduced = true;
        if (node.rd == 6 && node.op == Opcode::ADDI && node.rs1 == 5 &&
            node.imm == -3)
            sub_reduced = true;
    }
    EXPECT_TRUE(mul_folded);
    EXPECT_TRUE(add_reduced);
    EXPECT_TRUE(sub_reduced);
}

TEST(Optimizer, RedundantLoadElimination)
{
    Program prog = assemble(R"(
main:   la   r1, buf
        lw   r2, 0(r1)
        lw   r3, 0(r1)
        add  r4, r2, r3
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .word 42
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.rename = false;
    opts.eliminateDead = false;
    const OptimizerStats stats = optimizeBlock(block, opts);
    EXPECT_EQ(stats.loadsEliminated, 1u);

    int loads = 0;
    for (const Node &node : block.nodes)
        loads += node.isLoad();
    EXPECT_EQ(loads, 1);
}

TEST(Optimizer, StoreToLoadForwarding)
{
    Program prog = assemble(R"(
main:   la   r1, buf
        li   r2, 7
        sw   r2, 0(r1)
        lw   r3, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .word 0
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.rename = false;
    opts.eliminateDead = false;
    const OptimizerStats stats = optimizeBlock(block, opts);
    EXPECT_EQ(stats.loadsEliminated, 1u);
    int loads = 0;
    for (const Node &node : block.nodes)
        loads += node.isLoad();
    EXPECT_EQ(loads, 0);
}

TEST(Optimizer, AliasingStoreBlocksElimination)
{
    Program prog = assemble(R"(
main:   la   r1, buf
        lw   r2, 0(r1)
        sw   r5, 0(r6)     # unknown base: may alias
        lw   r3, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .word 42
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    const OptimizerStats stats = optimizeBlock(block);
    EXPECT_EQ(stats.loadsEliminated, 0u);
}

TEST(Optimizer, DisjointStoreAllowsElimination)
{
    Program prog = assemble(R"(
main:   la   r1, buf
        lw   r2, 0(r1)
        sw   r5, 8(r1)     # same base, provably disjoint
        lw   r3, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .space 16
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.rename = false;
    opts.eliminateDead = false;
    const OptimizerStats stats = optimizeBlock(block, opts);
    EXPECT_EQ(stats.loadsEliminated, 1u);
}

TEST(Optimizer, LocalRenamingBreaksReuse)
{
    // The paper's R0 example: two independent uses of the same register.
    // The exit lives in a second block so the first one has no syscall.
    Program prog = assemble(R"(
main:   lw   r1, 0(r2)
        add  r3, r1, r1
        lw   r1, 4(r2)
        add  r5, r1, r1
        j    fin
fin:    li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.propagate = false;
    opts.eliminateLoads = false;
    opts.eliminateDead = false;
    const OptimizerStats stats = optimizeBlock(block, opts);
    EXPECT_EQ(stats.renamed, 1u);
    // First def of r1 renamed to a scratch register; last def keeps r1.
    EXPECT_GE(block.nodes[0].rd, kNumArchRegs);
    EXPECT_EQ(block.nodes[1].rs1, block.nodes[0].rd);
    EXPECT_EQ(block.nodes[2].rd, 1);
}

TEST(Optimizer, DeadDefEliminated)
{
    Program prog = assemble(R"(
main:   li   r1, 5
        li   r1, 6
        add  r20, r1, r1
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    OptimizerOptions opts;
    opts.propagate = false;
    opts.eliminateLoads = false;
    opts.rename = false;
    const OptimizerStats stats = optimizeBlock(block, opts);
    EXPECT_EQ(stats.deadRemoved, 1u);
}

TEST(Optimizer, LiveOutDefsKept)
{
    Program prog = assemble(R"(
main:   li   r1, 5
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    const std::size_t before = block.nodes.size();
    optimizeBlock(block);
    // r1 is live out of the block; nothing may disappear.
    EXPECT_EQ(block.nodes.size(), before);
}

TEST(Optimizer, SyscallBlocksSkipRenaming)
{
    Program prog = assemble(R"(
main:   li   a0, 1
        li   a0, 2          # would be renamed in a pure block
        li   v0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    ImageBlock &block = image.blocks[0];
    const OptimizerStats stats = optimizeBlock(block);
    EXPECT_EQ(stats.renamed, 0u);
}

/**
 * Property: optimizing random straight-line blocks never changes the
 * architectural result. Random programs write their registers to memory
 * at the end so every def is observable.
 */
TEST(Optimizer, RandomBlocksPreserveSemantics)
{
    Rng rng(0xfeed);
    for (int trial = 0; trial < 60; ++trial) {
        std::string body;
        const int n = static_cast<int>(rng.range(4, 40));
        auto reg = [&](int lo, int hi) {
            return "r" + std::to_string(rng.range(lo, hi));
        };
        body += "main:   la r3, buf\n";
        for (int i = 0; i < n; ++i) {
            switch (rng.below(8)) {
              case 0:
                body += "li " + reg(4, 12) + ", " +
                        std::to_string(rng.range(-100, 100)) + "\n";
                break;
              case 1:
                body += "add " + reg(4, 12) + ", " + reg(4, 12) + ", " +
                        reg(4, 12) + "\n";
                break;
              case 2:
                body += "sub " + reg(4, 12) + ", " + reg(4, 12) + ", " +
                        reg(4, 12) + "\n";
                break;
              case 3:
                body += "mul " + reg(4, 12) + ", " + reg(4, 12) + ", " +
                        reg(4, 12) + "\n";
                break;
              case 4:
                body += "mov " + reg(4, 12) + ", " + reg(4, 12) + "\n";
                break;
              case 5:
                body += "lw " + reg(4, 12) + ", " +
                        std::to_string(4 * rng.range(0, 7)) + "(r3)\n";
                break;
              case 6:
                body += "sw " + reg(4, 12) + ", " +
                        std::to_string(4 * rng.range(0, 7)) + "(r3)\n";
                break;
              case 7:
                body += "xori " + reg(4, 12) + ", " + reg(4, 12) + ", " +
                        std::to_string(rng.range(0, 255)) + "\n";
                break;
            }
        }
        // Make every register observable.
        for (int r = 4; r <= 12; ++r)
            body += "sw r" + std::to_string(r) + ", " +
                    std::to_string(32 + 4 * r) + "(r3)\n";
        body += "li v0, 0\nli a0, 0\nsyscall\n";
        body += ".data\nbuf: .word 11,22,33,44,55,66,77,88\n";
        body += ".space 128\n";

        const Program prog = assemble(body, "random");
        CodeImage plain = buildCfg(prog);
        CodeImage optimized = buildCfg(prog);
        optimizeImage(optimized);

        SimOS os_a;
        SparseMemory mem_a;
        runAtomic(plain, os_a, mem_a);
        SimOS os_b;
        SparseMemory mem_b;
        runAtomic(optimized, os_b, mem_b);

        for (std::uint32_t off = 0; off < 256; off += 4)
            ASSERT_EQ(mem_a.read32(kDataBase + off),
                      mem_b.read32(kDataBase + off))
                << "trial " << trial << " offset " << off << "\n"
                << body;
    }
}

TEST(DepGraph, RawEdges)
{
    Program prog = assemble(R"(
main:   li   r1, 1
        add  r2, r1, r1
        add  r3, r2, r1
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    const DepGraph g = buildDepGraph(image.blocks[0], false);
    // node1 depends on node0; node2 on node0 and node1.
    EXPECT_EQ(g.preds[1], (std::vector<std::uint16_t>{0}));
    ASSERT_EQ(g.preds[2].size(), 2u);
}

TEST(DepGraph, AntiAndOutputEdgesOnlyWhenRequested)
{
    Program prog = assemble(R"(
main:   add  r3, r1, r2
        li   r1, 9
        li   r1, 10
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    const DepGraph without = buildDepGraph(image.blocks[0], false);
    EXPECT_TRUE(without.preds[1].empty()); // WAR ignored
    EXPECT_TRUE(without.preds[2].empty()); // WAW ignored

    const DepGraph with = buildDepGraph(image.blocks[0], true);
    EXPECT_EQ(with.preds[1], (std::vector<std::uint16_t>{0})); // WAR
    EXPECT_EQ(with.preds[2], (std::vector<std::uint16_t>{1})); // WAW
}

TEST(DepGraph, MemoryOrderingConservative)
{
    Program prog = assemble(R"(
main:   sw   r1, 0(r2)
        lw   r3, 0(r4)     # different base: may alias
        lw   r5, 0(r2)     # same base, same offset: aliases
        sw   r6, 4(r2)     # same base, disjoint: independent of loads
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    const DepGraph g = buildDepGraph(image.blocks[0], false);
    EXPECT_EQ(g.preds[1], (std::vector<std::uint16_t>{0})); // may alias
    EXPECT_EQ(g.preds[2], (std::vector<std::uint16_t>{0})); // same addr
    // Store at 4(r2) must order after the unknown-base load only.
    EXPECT_EQ(g.preds[3], (std::vector<std::uint16_t>{1}));
}

TEST(DepGraph, SyscallIsBarrier)
{
    Program prog = assemble(R"(
main:   li   r8, 1
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = imageOf(prog);
    const DepGraph g = buildDepGraph(image.blocks[0], false);
    EXPECT_EQ(g.preds[3].size(), 3u); // syscall waits on everything
}

TEST(DepGraph, MayAliasRules)
{
    Node a;
    a.op = Opcode::LW;
    a.rs1 = 2;
    a.imm = 0;
    Node b;
    b.op = Opcode::SW;
    b.rs1 = 2;
    b.imm = 4;
    EXPECT_FALSE(mayAlias(a, b, true));  // disjoint words
    EXPECT_TRUE(mayAlias(a, b, false));  // unknown base
    b.imm = 3;
    EXPECT_TRUE(mayAlias(a, b, true));   // byte 3 overlaps word 0-3
    b.op = Opcode::SB;
    b.imm = 4;
    EXPECT_FALSE(mayAlias(a, b, true));
    b.imm = 3;
    EXPECT_TRUE(mayAlias(a, b, true));
}

class ScheduleAllModels : public ::testing::TestWithParam<int>
{
};

TEST_P(ScheduleAllModels, StaticScheduleIsValid)
{
    const IssueModel model = issueModel(GetParam());
    Program prog = assemble(R"(
main:   la   r1, buf
        lw   r2, 0(r1)
        lw   r3, 4(r1)
        add  r4, r2, r3
        mul  r5, r4, r2
        sw   r5, 8(r1)
        addi r6, r1, 16
        lw   r7, 0(r6)
        add  r8, r7, r5
        sw   r8, 4(r6)
        bnez r8, main
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .word 1,2,3,4,5,6
)");
    CodeImage image = buildCfg(prog);
    for (ImageBlock &block : image.blocks) {
        scheduleStatic(block, model, 2);
        EXPECT_TRUE(wordsRespectModel(block, model))
            << "issue model " << model.name();
    }
}

TEST_P(ScheduleAllModels, DynamicPackingIsValidAndOrdered)
{
    const IssueModel model = issueModel(GetParam());
    Program prog = assemble(R"(
main:   lw   r2, 0(r1)
        add  r3, r2, r2
        sw   r3, 4(r1)
        lw   r4, 8(r1)
        add  r5, r4, r3
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    for (ImageBlock &block : image.blocks) {
        packDynamic(block, model);
        EXPECT_TRUE(wordsRespectModel(block, model));
        // Packing preserves program order across words.
        std::uint16_t last = 0;
        bool first = true;
        for (const Word &word : block.words) {
            for (std::uint16_t idx : word) {
                if (!first) {
                    EXPECT_GT(idx, last);
                }
                last = idx;
                first = false;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllIssueModels, ScheduleAllModels,
                         ::testing::Range(1, 9));

TEST(Schedule, SequentialModelOneNodePerWord)
{
    Program prog = assemble(R"(
main:   li   r1, 1
        li   r2, 2
        add  r3, r1, r2
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    packDynamic(image.blocks[0], issueModel(1));
    EXPECT_EQ(image.blocks[0].words.size(), image.blocks[0].nodes.size());

    scheduleStatic(image.blocks[0], issueModel(1), 1);
    EXPECT_EQ(image.blocks[0].words.size(), image.blocks[0].nodes.size());
}

TEST(Schedule, StaticRawNeverSameWord)
{
    Program prog = assemble(R"(
main:   li   r1, 1
        add  r2, r1, r1
        add  r3, r2, r2
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    ImageBlock &block = image.blocks[0];
    scheduleStatic(block, issueModel(8), 1);
    const DepGraph g = buildDepGraph(block, true);
    std::vector<int> word_of(block.nodes.size());
    for (std::size_t w = 0; w < block.words.size(); ++w)
        for (std::uint16_t idx : block.words[w])
            word_of[idx] = static_cast<int>(w);
    for (std::size_t i = 0; i < g.size(); ++i) {
        for (std::uint16_t succ : g.succs[i]) {
            EXPECT_GT(word_of[succ], word_of[i]);
        }
    }
}

TEST(Schedule, EmptyBlockSchedulesToNoWords)
{
    ImageBlock block;
    block.id = 0;
    block.entryPc = 0;
    scheduleStatic(block, issueModel(8), 1);
    EXPECT_TRUE(block.words.empty());
}

TEST(Schedule, SingleNodeBlockIsOneWord)
{
    Program prog = assemble(R"(
main:   li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    ImageBlock block;
    block.id = 0;
    block.entryPc = 0;
    block.nodes.push_back(image.blocks[0].nodes[0]);
    scheduleStatic(block, issueModel(8), 1);
    ASSERT_EQ(block.words.size(), 1u);
    ASSERT_EQ(block.words[0].size(), 1u);
    EXPECT_EQ(block.words[0][0], 0u);
}

TEST(Schedule, FactsDroppingAllMemEdgesFlattensTheBlock)
{
    // Two stores and two loads on unrelated (to the scheduler: unknown)
    // bases serialize under the conservative memory order. Facts that
    // prove every memory pair disjoint remove all four cross edges, so
    // the whole block fits one wide word.
    Program prog = assemble(R"(
main:   sw   r10, 0(r4)
        sw   r11, 0(r5)
        lw   r12, 0(r6)
        lw   r13, 0(r7)
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    ImageBlock conservative = image.blocks[0];
    conservative.nodes.resize(4); // drop the exit sequence
    ImageBlock proven = conservative;

    scheduleStatic(conservative, issueModel(8), 1);
    EXPECT_GT(conservative.words.size(), 1u);

    MemDepFacts facts;
    for (std::uint16_t a = 0; a < 4; ++a)
        for (std::uint16_t b = static_cast<std::uint16_t>(a + 1); b < 4;
             ++b)
            facts.noAliasPairs.push_back(MemDepFacts::packPair(a, b));
    std::sort(facts.noAliasPairs.begin(), facts.noAliasPairs.end());
    scheduleStatic(proven, issueModel(8), 1, &facts);
    ASSERT_EQ(proven.words.size(), 1u);
    EXPECT_EQ(proven.words[0].size(), 4u);
}

TEST(Translate, SingleBlocksAreIdentity)
{
    Program prog = assemble(R"(
main:   li   r1, 5
        mov  r2, r1
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    const std::size_t nodes_before = image.totalNodes();
    MachineConfig config;
    translate(image, config);
    EXPECT_EQ(image.totalNodes(), nodes_before);
    for (const ImageBlock &block : image.blocks)
        EXPECT_FALSE(block.words.empty());
}

} // namespace
} // namespace fgp
