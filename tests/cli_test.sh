#!/bin/sh
# End-to-end test of the fgpsim CLI: the paper's three-stage pipeline
# (profile -> enlargement file -> simulation) plus asm/run on a file and
# the static verifier (check) against its JSON schema validator.
set -e
FGPSIM="$1"
CHECK_BENCH="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Stage 1: statistics file.
"$FGPSIM" profile grep --out "$TMP/grep.prof" 2> "$TMP/log1"
grep -q "branch" "$TMP/grep.prof"

# Stage 2: enlargement file.
"$FGPSIM" bbe grep --profile "$TMP/grep.prof" --out "$TMP/grep.plan" \
    --max-chain 6 2> "$TMP/log2"
grep -q "chain" "$TMP/grep.plan"

# Stage 3: simulation consuming the plan; stdout must equal the VM's.
"$FGPSIM" run grep > "$TMP/vm.out" 2> /dev/null
"$FGPSIM" sim grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    > "$TMP/sim.out" 2> "$TMP/stats"
cmp "$TMP/vm.out" "$TMP/sim.out"
grep -q "nodes per cycle" "$TMP/stats"

# Extensions reachable from the CLI.
"$FGPSIM" sim grep --config dyn256/8G/enlarged --ras 16 --window 32 \
    > /dev/null 2> "$TMP/stats2"
grep -q "cycles" "$TMP/stats2"

# asm/run on a user-supplied file with stdin.
cat > "$TMP/echo.s" <<'ASM'
        .data
buf:    .space 64
        .text
main:   li   v0, 3
        li   a0, 0
        la   a1, buf
        li   a2, 64
        syscall
        mov  r20, v0
        li   v0, 4
        li   a0, 1
        la   a1, buf
        mov  a2, r20
        syscall
        li   v0, 0
        li   a0, 0
        syscall
ASM
printf 'hello-cli' > "$TMP/input.txt"
"$FGPSIM" asm "$TMP/echo.s" | grep -q "block"
OUT="$("$FGPSIM" run "$TMP/echo.s" --stdin "$TMP/input.txt" 2>/dev/null)"
test "$OUT" = "hello-cli"

# Pipeline trace subcommand emits per-cycle events.
"$FGPSIM" trace "$TMP/echo.s" --config dyn4/8A/single \
    --stdin "$TMP/input.txt" 2> /dev/null | grep -q "retire"

# Static verifier: the whole pipeline (single -> enlarged via the plan
# from stage 2 -> translated) must verify clean.
"$FGPSIM" check grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    > "$TMP/check.txt"
grep -q "check passed: 0 errors" "$TMP/check.txt"

# check --json validates against the fgpsim-check-v1 schema.
"$FGPSIM" check grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    --json > "$TMP/check.json"
sh "$CHECK_BENCH" --validate-check "$TMP/check.json"

# A user-supplied file also verifies (single path: no enlargement).
"$FGPSIM" check "$TMP/echo.s" --config dyn4/8A/single \
    --stdin "$TMP/input.txt" | grep -q "check passed"

# Strict mode still exits 0 (uninitialized-read findings are warnings)
# and the schema holds with a non-empty diagnostics array.
"$FGPSIM" check grep --config dyn4/8A/single --strict --json \
    > "$TMP/check_strict.json"
sh "$CHECK_BENCH" --validate-check "$TMP/check_strict.json"

# Bad inputs fail cleanly.
if "$FGPSIM" sim grep --config bogus 2> /dev/null; then
    echo "expected failure on bogus config" >&2
    exit 1
fi
echo "cli test ok"
