#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace fgp::obs {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

void
JsonWriter::comma()
{
    if (!firstInScope_)
        os_ << ",";
    if (depth_ > 0)
        os_ << "\n";
    firstInScope_ = false;
}

void
JsonWriter::indent()
{
    for (int i = 0; i < depth_; ++i)
        os_ << "  ";
}

void
JsonWriter::keyPrefix(std::string_view key)
{
    comma();
    indent();
    if (!key.empty())
        os_ << '"' << jsonEscape(key) << "\": ";
}

void
JsonWriter::beginObject(std::string_view key)
{
    keyPrefix(key);
    os_ << "{";
    ++depth_;
    firstInScope_ = true;
}

void
JsonWriter::endObject()
{
    --depth_;
    if (!firstInScope_) {
        os_ << "\n";
        indent();
    }
    os_ << "}";
    firstInScope_ = false;
    if (depth_ == 0)
        os_ << "\n";
}

void
JsonWriter::beginArray(std::string_view key)
{
    keyPrefix(key);
    os_ << "[";
    ++depth_;
    firstInScope_ = true;
}

void
JsonWriter::endArray()
{
    --depth_;
    if (!firstInScope_) {
        os_ << "\n";
        indent();
    }
    os_ << "]";
    firstInScope_ = false;
}

void
JsonWriter::field(std::string_view key, std::uint64_t value)
{
    keyPrefix(key);
    os_ << value;
}

void
JsonWriter::field(std::string_view key, std::int64_t value)
{
    keyPrefix(key);
    os_ << value;
}

void
JsonWriter::field(std::string_view key, int value)
{
    keyPrefix(key);
    os_ << value;
}

void
JsonWriter::field(std::string_view key, double value)
{
    keyPrefix(key);
    os_ << jsonNumber(value);
}

void
JsonWriter::field(std::string_view key, bool value)
{
    keyPrefix(key);
    os_ << (value ? "true" : "false");
}

void
JsonWriter::field(std::string_view key, std::string_view value)
{
    keyPrefix(key);
    os_ << '"' << jsonEscape(value) << '"';
}

void
JsonWriter::element(std::uint64_t value)
{
    keyPrefix({});
    os_ << value;
}

void
JsonWriter::element(std::string_view value)
{
    keyPrefix({});
    os_ << '"' << jsonEscape(value) << '"';
}

void
JsonWriter::rawField(std::string_view key, std::string_view json)
{
    keyPrefix(key);
    os_ << json;
}

} // namespace fgp::obs
