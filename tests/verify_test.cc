/**
 * Static verifier tests: every diagnostic code has a hand-built broken
 * image that triggers it, clean images across the whole pipeline verify
 * clean, and the checks are schedule-neutral (running them changes no
 * simulated result).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "base/logging.hh"
#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/translate.hh"
#include "verify/equiv.hh"
#include "verify/postpass.hh"
#include "verify/verify.hh"
#include "vm/interp.hh"
#include "workloads/workloads.hh"

namespace fgp {
namespace {

using verify::Code;
using verify::Report;

/**
 * Loop whose body branches the same way most iterations (bbe_test's).
 * Returned by reference: images borrow their Program, so the tests'
 * `buildCfg(loopProgram())` one-liners need it to stay alive.
 */
const Program &
loopProgram()
{
    static const Program prog = assemble(R"(
main:   li   r8, 0           # i
        li   r9, 100         # n
        li   r10, 0          # even accumulator
        li   r11, 0          # multiple-of-7 accumulator
loop:   andi r12, r8, 1
        bnez r12, odd        # taken half of the time
        addi r10, r10, 1
odd:    li   r13, 7
        rem  r14, r8, r13
        bnez r14, next       # heavily biased: taken 6/7
        addi r11, r11, 1
next:   addi r8, r8, 1
        blt  r8, r9, loop    # heavily biased: taken
        la   r1, out
        sw   r10, 0(r1)
        sw   r11, 4(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
out:    .space 8
)");
    return prog;
}

Profile
profileOf(const Program &prog)
{
    Profile profile;
    SimOS os;
    InterpOptions opts;
    opts.profile = &profile;
    interpret(prog, os, opts);
    return profile;
}

/** Fresh structural report for an image. */
Report
structural(const CodeImage &image, const verify::VerifyOptions &opts = {})
{
    return verify::verifyImage(image, opts);
}

/** Find the first node index in @p block satisfying @p pred, or -1. */
template <typename Pred>
int
findNode(const ImageBlock &block, Pred pred)
{
    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        if (pred(block.nodes[i]))
            return static_cast<int>(i);
    }
    return -1;
}

// ---------------------------------------------------------------------------
// Clean images verify clean.

TEST(Verify, CleanSingleImage)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Report report = structural(single);
    EXPECT_TRUE(report.clean()) << report.renderText();
    EXPECT_EQ(report.warningCount(), 0u) << report.renderText();
}

TEST(Verify, CleanPipelineEnlargedAndTranslated)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    const EnlargePlan plan = planEnlargement(single, profile);
    ASSERT_FALSE(plan.chains.empty());
    const CodeImage enlarged = applyEnlargement(single, plan);

    Report report = structural(enlarged);
    verify::checkEnlargementSoundness(single, enlarged, plan, report);
    EXPECT_TRUE(report.clean()) << report.renderText();

    const MachineConfig config = parseMachineConfig("dyn4/8A/enlarged");
    CodeImage translated = enlarged;
    translate(translated, config);

    verify::VerifyOptions vopts;
    vopts.issue = &config.issue;
    Report treport = structural(translated, vopts);
    verify::checkTranslationSoundness(enlarged, translated, treport);
    EXPECT_TRUE(treport.clean()) << treport.renderText();
}

TEST(Verify, OptimizeAllBlocksStaysSound)
{
    // The ablation path optimizes every block, not just enlarged ones —
    // a much larger surface for the symbolic equivalence engine.
    const Program &prog = loopProgram();
    const CodeImage before = buildCfg(prog);
    CodeImage after = before;
    TranslateOptions topts;
    topts.optimizeAll = true;
    translate(after, parseMachineConfig("static/8A/single"), topts);

    Report report;
    verify::checkTranslationSoundness(before, after, report);
    EXPECT_TRUE(report.clean()) << report.renderText();
}

// ---------------------------------------------------------------------------
// Structural negatives: one broken image per code.

TEST(Verify, DetectsBlockIdMismatch)
{
    CodeImage image = buildCfg(loopProgram());
    image.blocks[1].id = 7;
    EXPECT_TRUE(structural(image).hasCode(Code::BlockIdMismatch));
}

TEST(Verify, DetectsEmptyBlock)
{
    CodeImage image = buildCfg(loopProgram());
    image.blocks[1].nodes.clear();
    image.blocks[1].words.clear();
    EXPECT_TRUE(structural(image).hasCode(Code::EmptyBlock));
}

TEST(Verify, DetectsEntryMapBroken)
{
    CodeImage image = buildCfg(loopProgram());
    // Route a real entry pc at a block whose entryPc differs.
    auto it = image.entryByPc.find(image.blocks[0].entryPc);
    ASSERT_NE(it, image.entryByPc.end());
    it->second = image.blocks[1].id;
    EXPECT_TRUE(structural(image).hasCode(Code::EntryMapBroken));
}

TEST(Verify, DetectsNonTerminalControl)
{
    CodeImage image = buildCfg(loopProgram());
    int victim = -1;
    for (ImageBlock &block : image.blocks) {
        if (block.nodes.size() >= 2 && block.terminal() != nullptr) {
            std::swap(block.nodes.front(), block.nodes.back());
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    EXPECT_TRUE(structural(image).hasCode(Code::NonTerminalControl));
}

TEST(Verify, DetectsBadTerminator)
{
    CodeImage image = buildCfg(loopProgram());
    // A conditional branch must have a fall-through; sever it.
    int victim = -1;
    for (ImageBlock &block : image.blocks) {
        const Node *term = block.terminal();
        if (term != nullptr && term->op == Opcode::BNE &&
            block.fallthroughPc >= 0) {
            block.fallthroughPc = -1;
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    EXPECT_TRUE(structural(image).hasCode(Code::BadTerminator));
}

TEST(Verify, DetectsDanglingBranchTarget)
{
    CodeImage image = buildCfg(loopProgram());
    int victim = -1;
    for (ImageBlock &block : image.blocks) {
        Node *term = block.nodes.empty() ? nullptr : &block.nodes.back();
        if (term != nullptr && term->isControl() &&
            term->op != Opcode::JR && term->target >= 0) {
            term->target = 999999;
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    const Report report = structural(image);
    EXPECT_TRUE(report.hasCode(Code::DanglingBranchTarget))
        << report.renderText();
}

TEST(Verify, DetectsDanglingFallthrough)
{
    CodeImage image = buildCfg(loopProgram());
    int victim = -1;
    for (ImageBlock &block : image.blocks) {
        if (block.fallthroughPc >= 0) {
            block.fallthroughPc = 999999;
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    EXPECT_TRUE(structural(image).hasCode(Code::DanglingFallthrough));
}

TEST(Verify, DetectsBadFaultTarget)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    CodeImage enlarged = enlarge(single, profileOf(prog));
    int victim = -1;
    for (ImageBlock &block : enlarged.blocks) {
        const int idx = findNode(block,
                                 [](const Node &n) { return n.isFault(); });
        if (idx >= 0) {
            block.nodes[static_cast<std::size_t>(idx)].target = 999999;
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    EXPECT_TRUE(structural(enlarged).hasCode(Code::BadFaultTarget));
}

TEST(Verify, DetectsRegisterOutOfRange)
{
    CodeImage image = buildCfg(loopProgram());
    Node *node = nullptr;
    for (ImageBlock &block : image.blocks) {
        const int idx = findNode(block, [](const Node &n) {
            return operandUse(opcodeInfo(n.op).form).rs1;
        });
        if (idx >= 0) {
            node = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(node, nullptr);
    node->rs1 = kNumRegs; // one past the last scratch register
    EXPECT_TRUE(structural(image).hasCode(Code::RegisterOutOfRange));
}

TEST(Verify, DetectsOperandFormViolation)
{
    CodeImage image = buildCfg(loopProgram());
    Node *node = nullptr;
    for (ImageBlock &block : image.blocks) {
        const int idx = findNode(block, [](const Node &n) {
            return !operandUse(opcodeInfo(n.op).form).imm;
        });
        if (idx >= 0) {
            node = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(node, nullptr);
    node->imm = 7; // stray immediate outside the operand form
    EXPECT_TRUE(structural(image).hasCode(Code::OperandFormViolation));
}

TEST(Verify, DetectsWordPackingBroken)
{
    CodeImage image = buildCfg(loopProgram());
    const MachineConfig config = parseMachineConfig("dyn4/8A/single");
    translate(image, config);
    ImageBlock *victim = nullptr;
    for (ImageBlock &block : image.blocks) {
        if (!block.words.empty() && !block.words.front().empty()) {
            victim = &block;
            break;
        }
    }
    ASSERT_NE(victim, nullptr);
    victim->words.front().push_back(victim->words.front().front());
    verify::VerifyOptions vopts;
    vopts.issue = &config.issue;
    EXPECT_TRUE(structural(image, vopts).hasCode(Code::WordPackingBroken));
}

TEST(Verify, DetectsNoExitPath)
{
    CodeImage image = buildCfg(loopProgram());
    int victim = -1;
    for (ImageBlock &block : image.blocks) {
        if (block.terminal() != nullptr && !block.hasSyscall &&
            block.fallthroughPc < 0) {
            block.nodes.pop_back(); // strip the only way out
            victim = block.id;
            break;
        }
    }
    if (victim < 0) {
        // Fall back: make a branch block terminal-free and fall-through-free.
        for (ImageBlock &block : image.blocks) {
            if (block.terminal() != nullptr && !block.hasSyscall) {
                block.nodes.pop_back();
                block.fallthroughPc = -1;
                victim = block.id;
                break;
            }
        }
    }
    ASSERT_GE(victim, 0);
    EXPECT_TRUE(structural(image).hasCode(Code::NoExitPath));
}

TEST(Verify, DetectsBlockFlagMismatch)
{
    CodeImage image = buildCfg(loopProgram());
    int victim = -1;
    for (ImageBlock &block : image.blocks) {
        if (!block.hasSyscall) {
            block.hasSyscall = true;
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    EXPECT_TRUE(structural(image).hasCode(Code::BlockFlagMismatch));
}

// ---------------------------------------------------------------------------
// Dataflow negatives.

TEST(Verify, DetectsScratchReadBeforeWrite)
{
    CodeImage image = buildCfg(loopProgram());
    Node *node = nullptr;
    for (ImageBlock &block : image.blocks) {
        const int idx = findNode(block, [](const Node &n) {
            return operandUse(opcodeInfo(n.op).form).rs1;
        });
        if (idx >= 0) {
            node = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(node, nullptr);
    node->rs1 = kNumArchRegs; // scratch r32, never defined in this block
    const Report report = structural(image);
    EXPECT_TRUE(report.hasCode(Code::ScratchReadBeforeWrite))
        << report.renderText();
    EXPECT_FALSE(report.clean());
}

TEST(Verify, StrictModeWarnsOnMaybeUninitRead)
{
    const Program prog = assemble(R"(
main:   add  r8, r20, r0    # r20 never written on any path
        li   v0, 0
        li   a0, 0
        syscall
)");
    const CodeImage image = buildCfg(prog);
    verify::VerifyOptions opts;
    opts.strictUninit = true;
    const Report report = structural(image, opts);
    EXPECT_TRUE(report.hasCode(Code::MaybeUninitRead)) << report.renderText();
    // Findings are warnings: legal (the register file zero-fills) but
    // suspicious, so strict mode must not fail the image.
    EXPECT_TRUE(report.clean()) << report.renderText();
    EXPECT_GT(report.warningCount(), 0u);
}

TEST(Verify, StrictModeAcceptsWellInitializedProgram)
{
    // Every register read on any path — including the syscall's implicit
    // argument registers — is defined first, so strict mode stays silent.
    const Program prog = assemble(R"(
main:   li   r8, 3
        addi r8, r8, 1
        li   v0, 0
        li   a0, 0
        li   a1, 0
        li   a2, 0
        li   a3, 0
        syscall
)");
    const CodeImage image = buildCfg(prog);
    verify::VerifyOptions opts;
    opts.strictUninit = true;
    const Report report = structural(image, opts);
    EXPECT_FALSE(report.hasCode(Code::MaybeUninitRead))
        << report.renderText();
}

// ---------------------------------------------------------------------------
// BBE invariant negatives.

TEST(Verify, DetectsFaultOutsideEnlarged)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    CodeImage enlarged = enlarge(single, profileOf(prog));
    // Copy a fault node into an original (non-enlarged) block.
    const Node *fault = nullptr;
    for (const ImageBlock &block : enlarged.blocks) {
        const int idx = findNode(block,
                                 [](const Node &n) { return n.isFault(); });
        if (idx >= 0) {
            fault = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(fault, nullptr);
    ImageBlock &plain = enlarged.blocks[0];
    ASSERT_FALSE(plain.enlarged);
    plain.nodes.insert(plain.nodes.begin(), *fault);
    EXPECT_TRUE(structural(enlarged).hasCode(Code::FaultOutsideEnlarged));
}

TEST(Verify, DetectsCompanionEntryReachable)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    CodeImage enlarged = enlarge(single, profileOf(prog));
    std::int32_t companion = -1;
    for (const ImageBlock &block : enlarged.blocks) {
        if (block.companion) {
            companion = block.id;
            break;
        }
    }
    ASSERT_GE(companion, 0);
    enlarged.entryByPc[enlarged.block(companion).entryPc] = companion;
    EXPECT_TRUE(structural(enlarged).hasCode(Code::CompanionEntryReachable));
}

TEST(Verify, DetectsCorruptedCompanionFaultTarget)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    CodeImage enlarged = enlarge(single, profileOf(prog));
    // Retarget a primary's fault edge at an original block: the edge now
    // leaves its chain and the mutual-fault pairing is broken.
    int victim = -1;
    for (ImageBlock &block : enlarged.blocks) {
        if (!block.enlarged || block.companion)
            continue;
        const int idx = findNode(block,
                                 [](const Node &n) { return n.isFault(); });
        if (idx >= 0) {
            block.nodes[static_cast<std::size_t>(idx)].target =
                enlarged.blocks[0].id;
            victim = block.id;
            break;
        }
    }
    ASSERT_GE(victim, 0);
    const Report report = structural(enlarged);
    EXPECT_TRUE(report.hasCode(Code::CompanionFaultNotMutual))
        << report.renderText();
}

TEST(Verify, DetectsInstanceCapExceeded)
{
    // A plan may legally unroll a loop by re-entering the chain, but at
    // most 16 instances of one original block are allowed (§3.1). Build a
    // 17-deep unroll by hand; applyEnlargement does not enforce the cap
    // (planEnlargement does), so the checker must.
    const Program prog = assemble(R"(
main:   li   r8, 200
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)");
    const CodeImage single = buildCfg(prog);
    std::int32_t loop_pc = -1;
    for (const ImageBlock &block : single.blocks) {
        const Node *term = block.terminal();
        if (term != nullptr && term->op == Opcode::BNE &&
            term->target == block.entryPc) {
            loop_pc = block.entryPc;
            break;
        }
    }
    ASSERT_GE(loop_pc, 0);

    EnlargePlan plan;
    plan.chains.push_back(
        EnlargeChain{std::vector<std::int32_t>(17, loop_pc)});

    // The post-pass hook would (rightly) reject this build in debug mode;
    // suspend it so the checker can be exercised directly.
    verify::ScopedPostPassChecks suspend(false);
    const CodeImage enlarged = applyEnlargement(single, plan);

    Report report;
    verify::checkEnlargementSoundness(single, enlarged, plan, report);
    EXPECT_TRUE(report.hasCode(Code::InstanceCapExceeded))
        << report.renderText();

    // A shallower unroll stays within the cap. Instance accounting counts
    // companion replays too (each embedded junction re-executes the shared
    // prefix), so a 5-member self-loop chain costs 5 + 4+3+2+1 = 15.
    EnlargePlan capped;
    capped.chains.push_back(
        EnlargeChain{std::vector<std::int32_t>(5, loop_pc)});
    const CodeImage ok = applyEnlargement(single, capped);
    Report ok_report;
    verify::checkEnlargementSoundness(single, ok, capped, ok_report);
    EXPECT_TRUE(ok_report.clean()) << ok_report.renderText();
}

TEST(Verify, DetectsChainPlanBroken)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    EnlargePlan plan = planEnlargement(single, profile);
    ASSERT_FALSE(plan.chains.empty());
    const CodeImage enlarged = applyEnlargement(single, plan);

    // Audit the image against a plan with one extra chain that the image
    // was never built from.
    EnlargePlan tampered = plan;
    tampered.chains.push_back(EnlargeChain{{-5, -6}});
    Report report;
    verify::checkEnlargementSoundness(single, enlarged, tampered, report);
    EXPECT_TRUE(report.hasCode(Code::ChainPlanBroken)) << report.renderText();
}

// ---------------------------------------------------------------------------
// Transform-soundness negatives: tampered results are proven unequal.

const char *const kStraightLine = R"(
main:   li   r8, 1
        li   r9, 2
        add  r10, r8, r9
        la   r1, out
        sw   r10, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
out:    .space 8
)";

TEST(Verify, SoundnessCatchesRegisterTamper)
{
    const Program prog = assemble(kStraightLine);
    const CodeImage before = buildCfg(prog);
    CodeImage after = before;
    Node *node = nullptr;
    for (ImageBlock &block : after.blocks) {
        const int idx = findNode(
            block, [](const Node &n) { return n.op == Opcode::ADD; });
        if (idx >= 0) {
            node = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(node, nullptr);
    node->rs2 = node->rs1; // r8 + r8 instead of r8 + r9
    Report report;
    verify::checkTranslationSoundness(before, after, report);
    EXPECT_TRUE(report.hasCode(Code::RegisterEffectMismatch))
        << report.renderText();
}

TEST(Verify, SoundnessCatchesStoreTamper)
{
    const Program prog = assemble(kStraightLine);
    const CodeImage before = buildCfg(prog);
    CodeImage after = before;
    Node *node = nullptr;
    for (ImageBlock &block : after.blocks) {
        const int idx = findNode(
            block, [](const Node &n) { return opcodeInfo(n.op).isStore; });
        if (idx >= 0) {
            node = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(node, nullptr);
    node->imm += 4; // store lands at the wrong address
    Report report;
    verify::checkTranslationSoundness(before, after, report);
    EXPECT_TRUE(report.hasCode(Code::MemoryEffectMismatch))
        << report.renderText();
}

TEST(Verify, SoundnessCatchesControlTamper)
{
    const Program &prog = loopProgram();
    const CodeImage before = buildCfg(prog);
    CodeImage after = before;
    Node *term = nullptr;
    for (ImageBlock &block : after.blocks) {
        if (!block.nodes.empty() && block.nodes.back().op == Opcode::BNE) {
            term = &block.nodes.back();
            break;
        }
    }
    ASSERT_NE(term, nullptr);
    term->target = after.blocks[0].entryPc; // valid entry, wrong one
    Report report;
    verify::checkTranslationSoundness(before, after, report);
    EXPECT_TRUE(report.hasCode(Code::ControlEffectMismatch))
        << report.renderText();
}

TEST(Verify, SoundnessCatchesGuardTamper)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);
    const EnlargePlan plan = planEnlargement(single, profile);
    CodeImage enlarged = applyEnlargement(single, plan);

    // Flip the sense of an embedded fault guard: the enlarged block now
    // faults on the hot arc instead of the cold one.
    Node *fault = nullptr;
    for (ImageBlock &block : enlarged.blocks) {
        if (!block.enlarged || block.companion)
            continue;
        const int idx = findNode(block,
                                 [](const Node &n) { return n.isFault(); });
        if (idx >= 0) {
            fault = &block.nodes[static_cast<std::size_t>(idx)];
            break;
        }
    }
    ASSERT_NE(fault, nullptr);
    fault->op = fault->op == Opcode::FEQ ? Opcode::FNE : Opcode::FEQ;
    Report report;
    verify::checkEnlargementSoundness(single, enlarged, plan, report);
    EXPECT_TRUE(report.hasCode(Code::FaultGuardMismatch))
        << report.renderText();
}

TEST(Verify, SoundnessCatchesShapeTamper)
{
    const Program &prog = loopProgram();
    const CodeImage before = buildCfg(prog);
    CodeImage after = before;
    after.blocks.pop_back();
    Report report;
    verify::checkTranslationSoundness(before, after, report);
    EXPECT_TRUE(report.hasCode(Code::ImageShapeMismatch))
        << report.renderText();
}

// ---------------------------------------------------------------------------
// CFG successor helper.

TEST(Verify, ImageSuccessorsFollowBranchesAndFallthrough)
{
    const Program prog = assemble(R"(
main:   li   r8, 50
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)");
    const CodeImage image = buildCfg(prog);
    ASSERT_EQ(image.blocks.size(), 3u);
    const std::int32_t main_id = image.entryBlock;
    // main falls through into the loop; the loop reaches itself and the
    // exit block.
    const auto main_succ = verify::imageSuccessors(image, main_id);
    ASSERT_EQ(main_succ.size(), 1u);
    const std::int32_t loop_id = main_succ[0];
    const auto loop_succ = verify::imageSuccessors(image, loop_id);
    EXPECT_EQ(loop_succ.size(), 2u);
    EXPECT_TRUE(std::find(loop_succ.begin(), loop_succ.end(), loop_id) !=
                loop_succ.end());
}

// ---------------------------------------------------------------------------
// All five workloads verify clean across the pipeline and config corners.

TEST(Verify, AllWorkloadsVerifyCleanAcrossConfigs)
{
    const std::vector<std::string> configs = {
        "static/4A/enlarged",
        "dyn1/8D/enlarged",
        "dyn4/8A/enlarged",
        "dyn256/8G/enlarged",
    };
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name);
        wl.setScale(0.1);

        Profile profile;
        SimOS os;
        wl.prepareOs(os, InputSet::Profile);
        InterpOptions iopts;
        iopts.profile = &profile;
        interpret(wl.program(), os, iopts);

        const CodeImage single = buildCfg(wl.program());
        const Report sreport = structural(single);
        EXPECT_TRUE(sreport.clean()) << name << "\n" << sreport.renderText();

        const EnlargePlan plan = planEnlargement(single, profile);
        const CodeImage enlarged = applyEnlargement(single, plan);
        Report ereport = structural(enlarged);
        verify::checkEnlargementSoundness(single, enlarged, plan, ereport);
        EXPECT_TRUE(ereport.clean()) << name << "\n" << ereport.renderText();

        for (const std::string &cname : configs) {
            const MachineConfig config = parseMachineConfig(cname);
            CodeImage translated = enlarged;
            translate(translated, config);
            verify::VerifyOptions vopts;
            vopts.issue = &config.issue;
            Report treport = structural(translated, vopts);
            verify::checkTranslationSoundness(enlarged, translated, treport);
            EXPECT_TRUE(treport.clean())
                << name << " @ " << cname << "\n" << treport.renderText();
        }
    }
}

// ---------------------------------------------------------------------------
// Schedule neutrality: enabling the post-pass checks cannot change any
// simulated result (the verifier never mutates an image).

TEST(Verify, PostPassChecksAreScheduleNeutral)
{
    const MachineConfig config = parseMachineConfig("dyn4/8A/enlarged");

    auto run = [&](bool checks) {
        verify::ScopedPostPassChecks guard(checks);
        const Program &prog = loopProgram();
        const CodeImage single = buildCfg(prog);
        CodeImage image = enlarge(single, profileOf(prog));
        translate(image, config);
        SimOS os;
        EngineOptions opts;
        opts.config = config;
        return simulate(image, os, opts);
    };

    const EngineResult off = run(false);
    const EngineResult on = run(true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.retiredNodes, on.retiredNodes);
    EXPECT_EQ(off.committedBlocks, on.committedBlocks);
}

} // namespace
} // namespace fgp
