file(REMOVE_RECURSE
  "CMakeFiles/fgp_branch.dir/predictor.cc.o"
  "CMakeFiles/fgp_branch.dir/predictor.cc.o.d"
  "libfgp_branch.a"
  "libfgp_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
