# Empty compiler generated dependencies file for ablation_slot_mix.
# This may be replaced when dependencies are built.
