#include "verify/postpass.hh"

#include <atomic>
#include <cstdlib>

#include "base/logging.hh"
#include "verify/equiv.hh"
#include "verify/verify.hh"

namespace fgp::verify {

namespace {

/** -1 = follow the FGP_VERIFY / build-type default, else forced 0/1. */
std::atomic<int> g_override{-1};

bool
defaultEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("FGP_VERIFY")) {
            if (env[0] == '1')
                return true;
            if (env[0] == '0')
                return false;
        }
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }();
    return enabled;
}

void
failOn(const Report &report, const char *pass)
{
    if (report.clean())
        return;
    fgp_fatal(pass, " post-pass verification failed (",
              report.errorCount(), " errors):\n", report.renderText());
}

} // namespace

bool
postPassChecksEnabled()
{
    const int forced = g_override.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    return defaultEnabled();
}

void
setPostPassChecks(bool enabled)
{
    g_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void
resetPostPassChecks()
{
    g_override.store(-1, std::memory_order_relaxed);
}

void
postEnlargementCheck(const CodeImage &single, const CodeImage &enlarged,
                     const EnlargePlan &plan, int max_instances)
{
    if (!postPassChecksEnabled())
        return;
    Report report;
    verifyImageInto(enlarged, report, {}, "enlarged");
    checkEnlargementSoundness(single, enlarged, plan, report, max_instances,
                              "enlarged");
    failOn(report, "enlargement");
}

void
postTranslationCheck(const CodeImage &before, const CodeImage &after)
{
    if (!postPassChecksEnabled())
        return;
    Report report;
    verifyImageInto(after, report, {}, "translated");
    checkTranslationSoundness(before, after, report, "translated");
    failOn(report, "translation");
}

} // namespace fgp::verify
