file(REMOVE_RECURSE
  "CMakeFiles/ablation_slot_mix.dir/ablation_slot_mix.cc.o"
  "CMakeFiles/ablation_slot_mix.dir/ablation_slot_mix.cc.o.d"
  "ablation_slot_mix"
  "ablation_slot_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slot_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
