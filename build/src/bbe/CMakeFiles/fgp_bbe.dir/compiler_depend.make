# Empty compiler generated dependencies file for fgp_bbe.
# This may be replaced when dependencies are built.
