/**
 * @file
 * Stream loader for `fgpsim diff`: reads an `fgpsim-profile-v1` stream
 * (one cell, from `fgpsim profile --json`) or an `fgpsim-run-v1`
 * manifest (many cells, from a recorded sweep) into a uniform
 * cell-per-(workload, config) shape the differ aligns pairwise.
 *
 * The loader is schema-tolerant by design: it keys on record "kind" and
 * reads only the fields the differ needs, so streams from older
 * binaries (no sched_hash, no critedge records) still load — the differ
 * simply degrades to coarser divergence pinpointing for those inputs.
 */

#ifndef FGP_DIFF_STREAM_HH
#define FGP_DIFF_STREAM_HH

#include <array>
#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "profile/critpath.hh"
#include "profile/record.hh"

namespace fgp::diff {

/** Issue-slot stall causes, in `stall_*` JSON key order. These five
 *  close against the slot budget: per window,
 *  issued + sum(slots) == cycles * issue_width. */
inline constexpr std::size_t kSlotCauseCount = 5;
inline constexpr const char *kSlotCauseKeys[kSlotCauseCount] = {
    "stall_fetch_redirect", "stall_fetch_idle", "stall_window_full",
    "stall_short_word", "stall_drain"};

/** Node-cycle wait counters (diagnostic; not part of slot closure). */
inline constexpr std::size_t kWaitCount = 4;
inline constexpr const char *kWaitKeys[kWaitCount] = {
    "stall_operand_wait", "stall_memory_wait", "stall_serialize_wait",
    "stall_fu_busy"};

/** One profiling window of one cell. */
struct CellWindow
{
    std::uint64_t index = 0;
    std::uint64_t startCycle = 0;
    std::uint64_t cycles = 0;
    std::uint64_t issuedNodes = 0;
    std::uint64_t retiredNodes = 0;
    std::uint64_t mispredicts = 0;
    std::array<std::uint64_t, kSlotCauseCount> slots{};
    std::array<std::uint64_t, kWaitCount> waits{};
    bool hasHash = false;
    std::uint64_t schedHash = 0; ///< cumulative retired-log fingerprint
};

/** Per-block critical-path attribution of one cell. */
struct CellBlock
{
    std::int64_t entryPc = -1;
    std::uint64_t pathCycles = 0;
    std::uint64_t retiredNodes = 0;
    /** Joint block x cause row (critedge records); valid iff hasCauses. */
    std::array<std::uint64_t, profile::kCritCauseCount> causes{};
    bool hasCauses = false;
};

/** One (workload, config) cell of a loaded stream. */
struct CellStream
{
    std::string workload;
    std::string config;

    std::uint64_t issueWidth = 0;
    std::uint64_t windowCycles = 0;
    std::uint64_t cycles = 0;
    std::uint64_t issuedNodes = 0;
    std::uint64_t retiredNodes = 0;
    double nodesPerCycle = 0.0;
    double staticIpcBound = 0.0;
    std::uint64_t critPathCycles = 0;
    std::uint64_t critPathNodes = 0;

    /** Whole-run critical-path cause attribution (critpath records). */
    std::map<std::string, std::uint64_t> causeCycles;
    /** Blocks on the critical path, by image block id. */
    std::map<std::uint32_t, CellBlock> blocks;

    std::vector<CellWindow> windows;

    /** Retired-node log (profile --retired streams only). */
    std::vector<profile::RetiredNode> retired;

    bool hasSchedHash = false;
    std::uint64_t schedHash = 0; ///< final cumulative fingerprint

    /** Whole-run stall totals (run-v1 point records). When a manifest
     *  carries no per-window records, the loader synthesizes one
     *  run-spanning window from these — the PR 2 slot identity holds
     *  globally too, so aggregate diffs still close with zero
     *  residual. */
    std::array<std::uint64_t, kSlotCauseCount> aggSlots{};
    std::array<std::uint64_t, kWaitCount> aggWaits{};
    bool hasAgg = false;

    std::string key() const { return workload + " " + config; }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retiredNodes) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** A whole loaded stream: one cell per (workload, config). */
struct Stream
{
    std::string schema; ///< fgpsim-profile-v1 or fgpsim-run-v1
    std::vector<CellStream> cells;

    const CellStream *find(const std::string &key) const;
};

/**
 * Load a JSONL stream; @p what names the source in diagnostics. Throws
 * FatalError on malformed JSON, an unrecognized schema, or a stream
 * with no cells.
 */
Stream loadStream(std::istream &in, const std::string &what);

/** loadStream() over a file path. */
Stream loadStreamFile(const std::string &path);

/** Parse a "0x..." hex fingerprint (the JSON-safe hash encoding). */
std::uint64_t parseHash(const std::string &text);

/** Render a fingerprint the way the streams carry it ("0x%016llx"). */
std::string hashText(std::uint64_t hash);

} // namespace fgp::diff

#endif // FGP_DIFF_STREAM_HH
