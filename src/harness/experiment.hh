/**
 * @file
 * Experiment driver reproducing the paper's two-phase protocol (§3.1):
 *
 *  1. run the benchmark functionally on input set 1, collecting the
 *     branch-arc profile;
 *  2. create the basic-block-enlargement image from that profile;
 *  3. simulate on input set 2 (different data, so the branch profile is
 *     not overly biased), translating the image per machine
 *     configuration.
 *
 * Every simulation's architectural output (stdout + exit code) is checked
 * against the functional VM's golden run — a failing configuration is a
 * simulator bug and aborts.
 */

#ifndef FGP_HARNESS_EXPERIMENT_HH
#define FGP_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "profile/profile.hh"
#include "tld/translate.hh"
#include "vm/profile.hh"
#include "workloads/workloads.hh"

namespace fgp {

namespace metrics { class Registry; }

/** One data point. */
struct ExperimentResult
{
    std::string workload;
    MachineConfig config;

    /**
     * The paper's headline metric: reference dynamic nodes (functional VM
     * on the same input) divided by simulated cycles. Equals raw retired
     * nodes per cycle for single-block runs.
     */
    double nodesPerCycle = 0.0;

    std::uint64_t cycles = 0;
    std::uint64_t refNodes = 0;

    /**
     * Host wall time of this point's translate+simulate (nanoseconds);
     * excludes the shared one-time per-benchmark preparation. Pure
     * host-side observation — never feeds back into the simulation.
     */
    std::uint64_t hostNs = 0;

    /**
     * Sound static upper bound on retired nodes per cycle, computed from
     * the translated image before simulation (analyze::staticIpcBound).
     * The harness cross-checks engine.nodesPerCycle() against it after
     * every run when analyze::xcheckEnabled().
     */
    double staticIpcBound = 0.0;

    EngineResult engine;

    /**
     * Interval-profile copy-out (windows, per-block residency, measured
     * critical path). Empty (enabled == false) unless the runner's
     * EngineTweaks::profileWindow is nonzero. Profiling never changes
     * the schedule — cycles and stalls are bit-identical either way.
     */
    profile::RunProfile profile;
};

/**
 * Aggregate stall-cause attribution over a set of points (e.g. one
 * configuration across all benchmarks). Sums both the issue-slot and
 * the waiting-node-cycle accountings.
 */
StallBreakdown totalStalls(const std::vector<ExperimentResult> &results);

/**
 * Cached per-benchmark artifacts + configurable input scale.
 *
 * Thread safety: run() and the read accessors may be called from many
 * threads concurrently (see harness/parallel.hh). Each benchmark's
 * one-time preparation is built exactly once under a per-entry latch;
 * after that the cached artifacts are immutable shared state and every
 * run() works on its own copies (image, SimOS, engine). The setters
 * (setTranslateOptions, setEngineTweaks) and the constructor are NOT
 * thread-safe — configure the runner before going parallel.
 */
class ExperimentRunner
{
  public:
    /**
     * @param scale input-size scale (1.0 = default benchmark size).
     * @param enlarge_opts thresholds for the enlargement pass.
     */
    explicit ExperimentRunner(double scale = 1.0,
                              EnlargeOptions enlarge_opts = {});
    ~ExperimentRunner();

    /** Run one (benchmark, configuration) point on input set 2. */
    ExperimentResult run(const std::string &workload,
                         const MachineConfig &config);

    /** Override translating-loader options (optimizer ablations). */
    void setTranslateOptions(const TranslateOptions &opts)
    {
        translateOpts_ = opts;
    }

    /**
     * Extra engine knobs applied to every run: predictor configuration
     * (RAS depth, static-hint source), fault-target prediction, window
     * override, conservative disambiguation. When the static-hint source
     * is StaticHint::Profile the per-benchmark hint table from the
     * profiling run is wired in automatically.
     */
    struct EngineTweaks
    {
        StaticHint staticHint = StaticHint::Btfn;
        int rasDepth = 0;
        bool predictFaultTargets = false;
        int windowOverride = 0;
        bool conservativeLoads = false;
        DirectionPredictor direction = DirectionPredictor::TwoBitBtb;

        /**
         * Interval-profiler window in simulated cycles; 0 (the default)
         * disables profiling. When set, every run() carries a
         * profile::RunProfile on its ExperimentResult.
         */
        std::uint64_t profileWindow = 0;
    };

    void setEngineTweaks(const EngineTweaks &tweaks) { tweaks_ = tweaks; }

    /**
     * Attach a run-level metrics registry: host phase timers
     * (host.phase.*_ns for profile/reference/parse/enlarge/trace/
     * translate/simulate), harness progress counters (harness.*) and the
     * engine's per-run counter fold (engine.*) all land in it. The
     * registry itself is thread-safe; setting it is not — configure
     * before going parallel. Null (the default) keeps every instrumented
     * path free.
     */
    void setMetrics(metrics::Registry *registry) { metrics_ = registry; }

    /** Mean nodes/cycle over all five benchmarks for one configuration. */
    double meanNodesPerCycle(const MachineConfig &config);

    /** Mean redundancy over all five benchmarks for one configuration. */
    double meanRedundancy(const MachineConfig &config);

    /** Enlargement statistics of a benchmark's prepared image. */
    const EnlargeStats &enlargeStats(const std::string &workload);

    /** Reference dynamic-node count (input set 2). */
    std::uint64_t referenceNodes(const std::string &workload);

    /** Raw single/enlarged images (for block-size histograms etc.). */
    const CodeImage &singleImage(const std::string &workload);
    const CodeImage &enlargedImage(const std::string &workload);

    /** Fresh OS loaded with the measurement input for a benchmark. */
    std::unique_ptr<SimOS> makeOs(const std::string &workload,
                                  InputSet set = InputSet::Measure);

  private:
    struct Prepared;
    struct Entry;
    Prepared &prepare(const std::string &workload);
    std::unique_ptr<Prepared> buildPrepared(const std::string &workload);

  public:
    /** Input scale this runner was constructed with. */
    double scale() const { return scale_; }

  private:
    double scale_;
    EnlargeOptions enlargeOpts_;
    TranslateOptions translateOpts_ = {};
    EngineTweaks tweaks_ = {};
    metrics::Registry *metrics_ = nullptr;
    std::mutex cacheMutex_; ///< guards the cache map shape only
    std::map<std::string, std::unique_ptr<Entry>> cache_;
};

} // namespace fgp

#endif // FGP_HARNESS_EXPERIMENT_HH
