# Empty dependencies file for fgp_branch.
# This may be replaced when dependencies are built.
