src/workloads/CMakeFiles/fgp_workloads.dir/runtime.cc.o: \
 /root/repo/src/workloads/runtime.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/runtime.hh
