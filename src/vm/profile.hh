/**
 * @file
 * Execution profile collected by the functional interpreter on the first
 * input set. The enlargement pass (src/bbe) consumes the branch-arc
 * densities, exactly as the paper's enlargement-file creator does (§3.1).
 */

#ifndef FGP_VM_PROFILE_HH
#define FGP_VM_PROFILE_HH

#include <cstdint>
#include <unordered_map>

namespace fgp {

/** Dynamic counts for one two-way conditional branch. */
struct BranchArc
{
    std::uint64_t taken = 0;
    std::uint64_t notTaken = 0;

    std::uint64_t total() const { return taken + notTaken; }
    std::uint64_t hot() const { return taken > notTaken ? taken : notTaken; }
    bool hotIsTaken() const { return taken > notTaken; }
};

/** Profile of one run. */
struct Profile
{
    /** Conditional branches keyed by original pc. */
    std::unordered_map<std::int32_t, BranchArc> arcs;

    /** Unconditional jump execution counts keyed by original pc. */
    std::unordered_map<std::int32_t, std::uint64_t> jumps;

    /** Total dynamic conditional-branch count. */
    std::uint64_t totalBranches = 0;

    void
    recordBranch(std::int32_t pc, bool taken)
    {
        auto &arc = arcs[pc];
        if (taken)
            ++arc.taken;
        else
            ++arc.notTaken;
        ++totalBranches;
    }

    void recordJump(std::int32_t pc) { ++jumps[pc]; }
};

} // namespace fgp

#endif // FGP_VM_PROFILE_HH
