file(REMOVE_RECURSE
  "CMakeFiles/fgp_bbe.dir/enlarge.cc.o"
  "CMakeFiles/fgp_bbe.dir/enlarge.cc.o.d"
  "CMakeFiles/fgp_bbe.dir/plan.cc.o"
  "CMakeFiles/fgp_bbe.dir/plan.cc.o.d"
  "libfgp_bbe.a"
  "libfgp_bbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_bbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
