/**
 * Static ILP analyzer tests: hand-built DAG fixtures with known critical
 * paths, lint true/false-positive fixtures for every AN code, chain
 * audits on a real enlargement, and the sweep-level soundness oracle —
 * the analyzer's static IPC bound dominates the measured retired
 * nodes/cycle in every (workload, configuration) cell.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/analyze.hh"
#include "analyze/disambig.hh"
#include "analyze/lint.hh"
#include "analyze/oracle.hh"
#include "arch/config.hh"
#include "bbe/enlarge.hh"
#include "harness/experiment.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/schedule.hh"
#include "tld/translate.hh"
#include "verify/diag.hh"
#include "vm/interp.hh"
#include "workloads/workloads.hh"

namespace fgp {
namespace {

using verify::Code;
using verify::Report;

// Force the full disambiguation pipeline on for every run this binary
// makes: the scheduler consumes no-alias facts, the engine takes the
// fast-load path, and retirement re-checks every proven pair (MD001/
// MD002 panics on unsoundness). Must happen before any ExperimentRunner
// use — the enable predicates cache their first read.
[[maybe_unused]] const bool g_disambig_forced = [] {
    setenv("FGP_STATIC_DISAMBIG", "1", 1);
    setenv("FGP_DISAMBIG_XCHECK", "1", 1);
    return true;
}();

// ---------------------------------------------------------------------------
// Node/block fixture helpers.

Node
rrr(Opcode op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    Node n;
    n.op = op;
    n.rd = rd;
    n.rs1 = rs1;
    n.rs2 = rs2;
    return n;
}

Node
rri(Opcode op, std::uint8_t rd, std::uint8_t rs1, std::int32_t imm)
{
    Node n;
    n.op = op;
    n.rd = rd;
    n.rs1 = rs1;
    n.imm = imm;
    return n;
}

Node
load(Opcode op, std::uint8_t rd, std::uint8_t base, std::int32_t imm)
{
    Node n;
    n.op = op;
    n.rd = rd;
    n.rs1 = base;
    n.imm = imm;
    return n;
}

Node
store(Opcode op, std::uint8_t data, std::uint8_t base, std::int32_t imm)
{
    Node n;
    n.op = op;
    n.rs2 = data;
    n.rs1 = base;
    n.imm = imm;
    return n;
}

ImageBlock
blockOf(std::vector<Node> nodes)
{
    ImageBlock block;
    block.id = 0;
    block.entryPc = 0;
    block.nodes = std::move(nodes);
    return block;
}

Report
lintBlock(const ImageBlock &block)
{
    CodeImage image;
    image.blocks.push_back(block);
    image.entryBlock = -1; // skip the reachability lint for fixtures
    Report report;
    analyze::lintImage(image, report);
    return report;
}

// ---------------------------------------------------------------------------
// Dependence heights on hand-built DAGs.

TEST(AnalyzeHeight, DependentChainIsSequential)
{
    // r1 = r2+r3; r4 = r1+r1; r5 = r4+r4 — a pure three-node chain.
    const ImageBlock block = blockOf({rrr(Opcode::ADD, 10, 2, 3),
                                      rrr(Opcode::ADD, 11, 10, 10),
                                      rrr(Opcode::ADD, 12, 11, 11)});
    EXPECT_EQ(analyze::dependenceHeight(block), 3);
}

TEST(AnalyzeHeight, IndependentNodesAreFlat)
{
    const ImageBlock block = blockOf({rri(Opcode::ADDI, 10, 0, 1),
                                      rri(Opcode::ADDI, 11, 0, 2),
                                      rri(Opcode::ADDI, 12, 0, 3),
                                      rri(Opcode::ADDI, 13, 0, 4)});
    EXPECT_EQ(analyze::dependenceHeight(block), 1);
}

TEST(AnalyzeHeight, LoadLatencyWeighsTheCriticalPath)
{
    // lw r10, 0(r2); add r11, r10, r10
    const ImageBlock block = blockOf(
        {load(Opcode::LW, 10, 2, 0), rrr(Opcode::ADD, 11, 10, 10)});
    EXPECT_EQ(analyze::dependenceHeight(block, 1), 2);
    EXPECT_EQ(analyze::dependenceHeight(block, 3), 4);
}

TEST(AnalyzeHeight, ResidualWarsNameTheRegister)
{
    // add r10, r2, r3 reads live-in r2; add r2, r4, r5 is r2's final
    // def — the one WAR no renamer can kill.
    const ImageBlock block = blockOf(
        {rrr(Opcode::ADD, 10, 2, 3), rrr(Opcode::ADD, 2, 4, 5)});
    const auto wars = analyze::residualWars(block);
    ASSERT_EQ(wars.size(), 1u);
    EXPECT_EQ(wars[0].reg, 2);
    EXPECT_EQ(wars[0].reader, 0);
    EXPECT_EQ(wars[0].def, 1);
    EXPECT_EQ(analyze::dependenceHeight(block), 1);
    EXPECT_EQ(analyze::residualHeight(block), 2);
}

TEST(AnalyzeHeight, RawChainHasNoResidualWars)
{
    const ImageBlock block = blockOf(
        {rrr(Opcode::ADD, 10, 2, 3), rrr(Opcode::ADD, 11, 10, 10)});
    EXPECT_TRUE(analyze::residualWars(block).empty());
    EXPECT_EQ(analyze::residualHeight(block),
              analyze::dependenceHeight(block));
}

TEST(AnalyzeHeight, ReadOfOwnFinalDefIsNotAWar)
{
    // addi r8, r8, 1: the read and the final def are the same node.
    const ImageBlock block = blockOf({rri(Opcode::ADDI, 8, 8, 1)});
    EXPECT_TRUE(analyze::residualWars(block).empty());
}

// ---------------------------------------------------------------------------
// Whole-image bounds.

TEST(AnalyzeBounds, StaticIpcBoundIsNodesOverWords)
{
    CodeImage image;
    ImageBlock block = blockOf({rri(Opcode::ADDI, 10, 0, 1),
                                rri(Opcode::ADDI, 11, 0, 2),
                                rri(Opcode::ADDI, 12, 0, 3),
                                rri(Opcode::ADDI, 13, 0, 4)});
    block.words = {{0, 1}, {2, 3}}; // 4 nodes in 2 words
    image.blocks.push_back(block);
    EXPECT_DOUBLE_EQ(analyze::staticIpcBound(image), 2.0);

    // An untranslated image has no words and no packed bound.
    CodeImage raw;
    raw.blocks.push_back(blockOf({rri(Opcode::ADDI, 10, 0, 1)}));
    EXPECT_DOUBLE_EQ(analyze::staticIpcBound(raw), 0.0);
}

TEST(AnalyzeBounds, ResourceBoundsRespectIssueShapes)
{
    CodeImage image;
    image.blocks.push_back(blockOf({rri(Opcode::ADDI, 10, 0, 1),
                                    rri(Opcode::ADDI, 11, 0, 2),
                                    load(Opcode::LW, 12, 2, 0),
                                    load(Opcode::LW, 13, 2, 4)}));
    const analyze::ImageAnalysis analysis = analyze::analyzeImage(image);
    ASSERT_EQ(analysis.resourceBounds.size(), allIssueModels().size());
    for (const analyze::ResourceBound &rb : analysis.resourceBounds) {
        EXPECT_GT(rb.bound, 0.0);
        EXPECT_LE(rb.bound, static_cast<double>(rb.width));
    }
    // Model 1 issues one node of any kind per cycle.
    EXPECT_DOUBLE_EQ(analysis.resourceBounds.front().bound, 1.0);
}

TEST(AnalyzeBounds, AnalyzeNeverMutatesTheImage)
{
    const Program prog = assemble(R"(
main:   li   r8, 3
        addi r9, r8, 1
        li   v0, 0
        li   a0, 0
        syscall
)");
    CodeImage image = buildCfg(prog);
    const CodeImage before = image;
    analyze::analyzeImage(image);
    Report report;
    analyze::lintImage(image, report);
    ASSERT_EQ(image.blocks.size(), before.blocks.size());
    for (std::size_t b = 0; b < image.blocks.size(); ++b) {
        EXPECT_EQ(image.blocks[b].nodes, before.blocks[b].nodes);
        EXPECT_EQ(image.blocks[b].words, before.blocks[b].words);
    }
}

// ---------------------------------------------------------------------------
// Lint fixtures: one true positive and one false-positive guard per code.

TEST(AnalyzeLint, SerializingFalseDepFires)
{
    const ImageBlock block = blockOf(
        {rrr(Opcode::ADD, 10, 2, 3), rrr(Opcode::ADD, 2, 4, 5)});
    const Report report = lintBlock(block);
    EXPECT_TRUE(report.hasCode(Code::SerializingFalseDep))
        << report.renderText();
}

TEST(AnalyzeLint, SerializingFalseDepSilentOffCriticalPath)
{
    // The WAR exists (r2 reader -> final def) but a longer true chain
    // hides it, so no height is lost and the lint stays quiet.
    const ImageBlock block = blockOf({rrr(Opcode::ADD, 10, 2, 3),
                                      rrr(Opcode::ADD, 11, 10, 10),
                                      rrr(Opcode::ADD, 12, 11, 11),
                                      rrr(Opcode::ADD, 2, 4, 5)});
    EXPECT_EQ(analyze::residualWars(block).size(), 1u);
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::SerializingFalseDep))
        << report.renderText();
}

TEST(AnalyzeLint, DeadDefFires)
{
    const ImageBlock block = blockOf(
        {rri(Opcode::ADDI, 10, 0, 1), rri(Opcode::ADDI, 10, 0, 2)});
    const Report report = lintBlock(block);
    ASSERT_TRUE(report.hasCode(Code::DeadDefSurvives))
        << report.renderText();
    EXPECT_EQ(report.diagnostics()[0].node, 0);
}

TEST(AnalyzeLint, DeadDefSilentWhenRead)
{
    const ImageBlock block = blockOf({rri(Opcode::ADDI, 10, 0, 1),
                                      rrr(Opcode::ADD, 11, 10, 10),
                                      rri(Opcode::ADDI, 10, 0, 2)});
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::DeadDefSurvives))
        << report.renderText();
}

TEST(AnalyzeLint, DeadDefSilentForLoads)
{
    // A load def overwritten unread is not flagged: the access itself
    // has architectural meaning (it may fault).
    const ImageBlock block = blockOf(
        {load(Opcode::LW, 10, 2, 0), rri(Opcode::ADDI, 10, 0, 2)});
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::DeadDefSurvives))
        << report.renderText();
}

TEST(AnalyzeLint, ForwardingDefeatedByUnknownBase)
{
    // sw 0(r4) then lw 0(r6): distinct base values must be assumed to
    // alias, and run-time disambiguation serializes the pair.
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 6, 0)});
    const Report report = lintBlock(block);
    EXPECT_TRUE(report.hasCode(Code::ForwardingDefeated))
        << report.renderText();
}

TEST(AnalyzeLint, ForwardingDefeatedByPartialOverlap)
{
    // sb covers one byte of the word the lw reads back.
    const ImageBlock block = blockOf(
        {store(Opcode::SB, 10, 4, 0), load(Opcode::LW, 11, 4, 0)});
    const Report report = lintBlock(block);
    EXPECT_TRUE(report.hasCode(Code::ForwardingDefeated))
        << report.renderText();
}

TEST(AnalyzeLint, ForwardingSatisfiedByFullCoverage)
{
    // Same base value, store fully covers the load: forwarding works.
    const ImageBlock covered = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 4, 0)});
    // And disjoint offsets on one base never alias at all.
    const ImageBlock disjoint = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 4, 8)});
    EXPECT_FALSE(lintBlock(covered).hasCode(Code::ForwardingDefeated));
    EXPECT_FALSE(lintBlock(disjoint).hasCode(Code::ForwardingDefeated));
}

TEST(AnalyzeLint, ForwardingDefeatedWhenBaseRedefinedBetween)
{
    // The base register changes between store and load, so the two
    // accesses use different base values even though rs1 matches.
    const ImageBlock block = blockOf({store(Opcode::SW, 10, 4, 0),
                                      rri(Opcode::ADDI, 4, 4, 16),
                                      load(Opcode::LW, 11, 4, 0)});
    const Report report = lintBlock(block);
    EXPECT_TRUE(report.hasCode(Code::ForwardingDefeated))
        << report.renderText();
}

TEST(AnalyzeLint, UnreachableBlockAndUnusedLabel)
{
    const Program prog = assemble(R"(
main:   j    end
dead:   addi r8, r8, 1
end:    li   v0, 0
        li   a0, 0
        syscall
)");
    const CodeImage image = buildCfg(prog);
    Report report;
    analyze::lintImage(image, report);
    EXPECT_TRUE(report.hasCode(Code::UnreachableBlock))
        << report.renderText();
    EXPECT_TRUE(report.hasCode(Code::UnusedLabel)) << report.renderText();
    // Exactly one unused label: "end" is targeted, "main" is the entry.
    EXPECT_EQ(report.countOf(Code::UnusedLabel), 1u);
}

TEST(AnalyzeLint, ReachableImageIsQuietOnThoseCodes)
{
    const Program prog = assemble(R"(
main:   li   r8, 0
loop:   addi r8, r8, 1
        slti r9, r8, 5
        bnez r9, loop
        li   v0, 0
        li   a0, 0
        syscall
)");
    const CodeImage image = buildCfg(prog);
    Report report;
    analyze::lintImage(image, report);
    EXPECT_FALSE(report.hasCode(Code::UnreachableBlock))
        << report.renderText();
    EXPECT_FALSE(report.hasCode(Code::UnusedLabel)) << report.renderText();
}

TEST(AnalyzeLint, AllFindingsAreWarnings)
{
    const ImageBlock block = blockOf(
        {rri(Opcode::ADDI, 10, 0, 1), rri(Opcode::ADDI, 10, 0, 2)});
    const Report report = lintBlock(block);
    ASSERT_FALSE(report.diagnostics().empty());
    EXPECT_EQ(report.errorCount(), 0u);
}

TEST(AnalyzeLint, AnCodesAreRegistered)
{
    // The AN family registers via verify::registerCodes from the lint's
    // own translation unit — no switch in diag.cc (the registry keeps
    // the verifier families intact alongside).
    EXPECT_EQ(verify::codeId(Code::SerializingFalseDep), "AN001");
    EXPECT_EQ(verify::codeName(Code::UnusedLabel), "unused-label");
    EXPECT_EQ(verify::codeId(Code::BlockIdMismatch), "IMG001");
}

// ---------------------------------------------------------------------------
// Chain audits against a real enlargement.

const Program &
loopProgram()
{
    static const Program prog = assemble(R"(
main:   li   r8, 0
        li   r9, 100
        li   r10, 0
loop:   andi r12, r8, 1
        bnez r12, odd
        addi r10, r10, 1
odd:    addi r8, r8, 1
        blt  r8, r9, loop
        la   r1, out
        sw   r10, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
        .data
out:    .space 4
)");
    return prog;
}

Profile
profileOf(const Program &prog)
{
    Profile profile;
    SimOS os;
    InterpOptions opts;
    opts.profile = &profile;
    interpret(prog, os, opts);
    return profile;
}

TEST(AnalyzeChains, AuditCoversEveryBuiltChain)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const EnlargePlan plan =
        planEnlargement(single, profileOf(prog));
    ASSERT_FALSE(plan.chains.empty());
    const CodeImage enlarged = applyEnlargement(single, plan);

    const std::vector<analyze::ChainAudit> audits =
        analyze::auditChains(single, enlarged, plan);
    ASSERT_FALSE(audits.empty());
    for (const analyze::ChainAudit &audit : audits) {
        EXPECT_GE(audit.members, 2u);
        EXPECT_GT(audit.nodes, 0u);
        EXPECT_GT(audit.fusedHeight, 0);
        EXPECT_GT(audit.memberHeightSum, 0);
    }
    // Sorted by predicted reduction, best first.
    for (std::size_t i = 1; i < audits.size(); ++i)
        EXPECT_GE(audits[i - 1].heightReduction(),
                  audits[i].heightReduction());
}

TEST(AnalyzeChains, HeightRankingHookPreservesTheChainSet)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    EnlargeOptions opts;
    opts.auditHook = analyze::heightRankingHook();
    const EnlargePlan ranked = planEnlargement(single, profile, opts);
    const EnlargePlan plain = planEnlargement(single, profile);
    ASSERT_EQ(ranked.chains.size(), plain.chains.size());

    // The hook reorders; it must not invent or corrupt chains — the
    // ranked plan still applies.
    const CodeImage enlarged = applyEnlargement(single, ranked);
    EXPECT_GT(enlarged.blocks.size(), single.blocks.size());
}

// ---------------------------------------------------------------------------
// Static memory disambiguation: the classification lattice on hand-built
// pairs, scratch-register value tracking, scheduler integration, and the
// AN007/AN008 lints.

TEST(AnalyzeDisambig, SameBaseDisjointOffsetsAreNoAlias)
{
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 4, 8)});
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    ASSERT_EQ(bd.pairs.size(), 1u);
    EXPECT_EQ(bd.pairs[0].cls, analyze::AliasClass::NoAlias);
    EXPECT_FALSE(bd.pairs[0].storeStore);
    EXPECT_EQ(bd.noAlias, 1u);
    // The load is no-alias against every store, so it never needs the
    // store queue; the facts carry the packed pair for the scheduler.
    EXPECT_EQ(bd.independentLoads, 1u);
    EXPECT_TRUE(bd.loadIndependent[1]);
    EXPECT_TRUE(bd.facts.independent(0, 1));
}

TEST(AnalyzeDisambig, SameAddressSameWidthIsMustAlias)
{
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 16), load(Opcode::LW, 11, 4, 16)});
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    ASSERT_EQ(bd.pairs.size(), 1u);
    EXPECT_EQ(bd.pairs[0].cls, analyze::AliasClass::MustAlias);
    EXPECT_EQ(bd.independentLoads, 0u);
    EXPECT_TRUE(bd.facts.noAliasPairs.empty());
}

TEST(AnalyzeDisambig, UnknownBasesStayMayAlias)
{
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 6, 0)});
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    ASSERT_EQ(bd.pairs.size(), 1u);
    EXPECT_EQ(bd.pairs[0].cls, analyze::AliasClass::MayAlias);
    EXPECT_EQ(bd.independentLoads, 0u);
}

TEST(AnalyzeDisambig, ScratchRegisterTrackingProvesDisjoint)
{
    // r5 = r4 + 8, so 0(r5) and 0..3(r4) are provably disjoint even
    // though the base registers differ — the symbolic walker canonizes
    // both addresses over the same live-in.
    const ImageBlock block = blockOf({rri(Opcode::ADDI, 5, 4, 8),
                                      store(Opcode::SW, 10, 4, 0),
                                      load(Opcode::LW, 11, 5, 0)});
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    ASSERT_EQ(bd.pairs.size(), 1u);
    EXPECT_EQ(bd.pairs[0].cls, analyze::AliasClass::NoAlias);
    EXPECT_TRUE(bd.facts.independent(1, 2));
    EXPECT_EQ(bd.independentLoads, 1u);
}

TEST(AnalyzeDisambig, StoreStorePairsAreClassified)
{
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), store(Opcode::SW, 11, 4, 0)});
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    ASSERT_EQ(bd.pairs.size(), 1u);
    EXPECT_TRUE(bd.pairs[0].storeStore);
    EXPECT_EQ(bd.pairs[0].cls, analyze::AliasClass::MustAlias);
}

TEST(AnalyzeDisambig, LoadPairsAreNotClassified)
{
    // Loads commute; only load/store and store/store pairs matter.
    const ImageBlock block = blockOf(
        {load(Opcode::LW, 10, 4, 0), load(Opcode::LW, 11, 4, 0)});
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    EXPECT_TRUE(bd.pairs.empty());
}

TEST(AnalyzeDisambig, SyscallExcludesLoadIndependence)
{
    // The pair classification survives (addresses are unaffected), but
    // no load in a syscall block may bypass the store queue: the
    // syscall writes memory the symbolic store log cannot see.
    ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 4, 8)});
    block.hasSyscall = true;
    const analyze::BlockDisambig bd = analyze::disambigBlock(block);
    ASSERT_EQ(bd.pairs.size(), 1u);
    EXPECT_EQ(bd.pairs[0].cls, analyze::AliasClass::NoAlias);
    EXPECT_EQ(bd.independentLoads, 0u);
    EXPECT_FALSE(bd.loadIndependent[1]);
}

TEST(AnalyzeDisambig, EmptyFactsScheduleIsBitIdentical)
{
    // The facts plumbing itself must not perturb scheduling: a hook
    // returning no facts yields byte-for-byte the baseline words. This
    // is the FGP_STATIC_DISAMBIG=0 guarantee in unit form.
    const MachineConfig config{Discipline::Static, issueModel(8),
                               memoryConfig('A'), BranchMode::Single};
    CodeImage baseline = buildCfg(loopProgram());
    CodeImage hooked = buildCfg(loopProgram());
    translate(baseline, config);
    TranslateOptions topts;
    topts.disambigHook = [](const ImageBlock &) { return MemDepFacts{}; };
    translate(hooked, config, topts);
    ASSERT_EQ(baseline.blocks.size(), hooked.blocks.size());
    for (std::size_t b = 0; b < baseline.blocks.size(); ++b)
        EXPECT_EQ(baseline.blocks[b].words, hooked.blocks[b].words);
}

TEST(AnalyzeDisambig, FactsHoistLoadAboveIndependentStore)
{
    // The store's data arrives late; the load the facts prove disjoint
    // (through the r5 = r4 + 8 copy the baseline scheduler cannot see
    // through) no longer waits for it.
    const Program prog = assemble(R"(
main:   la   r4, buf
        addi r5, r4, 8
        add  r10, r2, r3
        add  r10, r10, r10
        add  r10, r10, r10
        sw   r10, 0(r4)
        lw   r11, 0(r5)
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .space 16
)");
    const MachineConfig config{Discipline::Static, issueModel(8),
                               memoryConfig('A'), BranchMode::Single};
    CodeImage baseline = buildCfg(prog);
    CodeImage hooked = buildCfg(prog);
    translate(baseline, config);
    TranslateOptions topts;
    topts.disambigHook = analyze::disambigSchedulingHook();
    translate(hooked, config, topts);

    const auto wordOf = [](const ImageBlock &block, std::uint16_t node) {
        for (std::size_t w = 0; w < block.words.size(); ++w)
            for (std::uint16_t idx : block.words[w])
                if (idx == node)
                    return w;
        return block.words.size();
    };
    // Node 6 is the lw; la/addi feed its address in the first words.
    ASSERT_TRUE(baseline.blocks[0].nodes[6].isLoad());
    EXPECT_LT(wordOf(hooked.blocks[0], 6), wordOf(baseline.blocks[0], 6));
}

TEST(AnalyzeDisambig, ImageSummaryCloses)
{
    const MachineConfig config{Discipline::Dyn4, issueModel(8),
                               memoryConfig('A'), BranchMode::Single};
    CodeImage image = buildCfg(loopProgram());
    translate(image, config);
    const analyze::DisambigImage di = analyze::disambigImage(image);
    ASSERT_EQ(di.blocks.size(), image.blocks.size());
    EXPECT_EQ(di.pairsTotal,
              di.noAliasTotal + di.mustAliasTotal + di.mayAliasTotal);
    std::size_t pairs = 0;
    for (const analyze::BlockDisambig &b : di.blocks) {
        pairs += b.pairs.size();
        // issuePos covers a translated block node-for-node.
        EXPECT_EQ(b.issuePos.size(),
                  image.blocks[static_cast<std::size_t>(b.block)]
                      .nodes.size());
    }
    EXPECT_EQ(di.pairsTotal, pairs);
}

TEST(AnalyzeLint, HighMayAliasDensityFires)
{
    // Four unknown bases: all five pairs stay may-alias.
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), store(Opcode::SW, 11, 5, 0),
         load(Opcode::LW, 12, 6, 0), load(Opcode::LW, 13, 7, 0)});
    const Report report = lintBlock(block);
    EXPECT_TRUE(report.hasCode(Code::HighMayAliasDensity))
        << report.renderText();
}

TEST(AnalyzeLint, HighMayAliasDensitySilentWhenProven)
{
    // Same shape, one base: every pair is provably disjoint.
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), store(Opcode::SW, 11, 4, 8),
         load(Opcode::LW, 12, 4, 16), load(Opcode::LW, 13, 4, 24)});
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::HighMayAliasDensity))
        << report.renderText();
}

TEST(AnalyzeLint, HighMayAliasDensityRespectsNoiseFloor)
{
    // One may-alias pair is 100% density but below the pair floor.
    const ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 6, 0)});
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::HighMayAliasDensity))
        << report.renderText();
}

TEST(AnalyzeLint, PackedDisjointPairFires)
{
    ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 4, 8)});
    block.words = {{0, 1}};
    const Report report = lintBlock(block);
    ASSERT_TRUE(report.hasCode(Code::PackedDisjointPair))
        << report.renderText();
    // The diagnostic anchors on the load.
    EXPECT_EQ(report.diagnostics()[0].node, 1);
}

TEST(AnalyzeLint, PackedDisjointPairSilentAcrossWords)
{
    ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 4, 8)});
    block.words = {{0}, {1}};
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::PackedDisjointPair))
        << report.renderText();
}

TEST(AnalyzeLint, PackedMayAliasPairIsNotFlagged)
{
    // Unproven pairs are the run-time disambiguator's job, not AN008's.
    ImageBlock block = blockOf(
        {store(Opcode::SW, 10, 4, 0), load(Opcode::LW, 11, 6, 0)});
    block.words = {{0, 1}};
    const Report report = lintBlock(block);
    EXPECT_FALSE(report.hasCode(Code::PackedDisjointPair))
        << report.renderText();
}

// ---------------------------------------------------------------------------
// The machine-checked oracle: static bound >= dynamic IPC, every cell.

TEST(AnalyzeSweep, StaticBoundDominatesMeasuredIpc)
{
    ExperimentRunner runner(0.05);
    std::vector<MachineConfig> configs;
    for (int im : {1, 2, 8})
        for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged})
            configs.push_back(
                {Discipline::Dyn4, issueModel(im), memoryConfig('A'), bm});
    configs.push_back({Discipline::Dyn256, issueModel(8), memoryConfig('G'),
                       BranchMode::Enlarged});

    for (const std::string &workload : workloadNames()) {
        for (const MachineConfig &config : configs) {
            const ExperimentResult r = runner.run(workload, config);
            EXPECT_GT(r.staticIpcBound, 0.0)
                << workload << " " << config.name();
            EXPECT_LE(r.engine.nodesPerCycle(),
                      r.staticIpcBound * (1.0 + 1e-9))
                << workload << " " << config.name() << ": retired "
                << r.engine.nodesPerCycle() << " nodes/cycle vs bound "
                << r.staticIpcBound;
        }
    }
}

// ---------------------------------------------------------------------------
// The disambiguator's own machine-checked soundness proof: with facts
// consumed (scheduling + fast loads) and the retirement cross-check
// armed (see g_disambig_forced), every workload on every issue model
// must retire with zero MD001/MD002 violations — the harness panics on
// any, and the counters prove the check actually ran.

TEST(DisambigXcheck, NoAliasFactsSoundOnAllWorkloads)
{
    ASSERT_TRUE(analyze::staticDisambigEnabled());
    ASSERT_TRUE(analyze::disambigXcheckEnabled());

    ExperimentRunner runner(0.05);
    std::uint64_t checked = 0;
    std::size_t workloads_with_fast_loads = 0;
    for (const std::string &workload : workloadNames()) {
        std::uint64_t fast = 0;
        for (const IssueModel &issue : allIssueModels()) {
            const MachineConfig config{Discipline::Dyn256, issue,
                                       memoryConfig('A'),
                                       BranchMode::Enlarged};
            const ExperimentResult r = runner.run(workload, config);
            EXPECT_EQ(r.engine.disambigViolations, 0u)
                << workload << " " << config.name();
            checked += r.engine.disambigCheckedPairs;
            fast += r.engine.disambigFastLoads;
        }
        if (fast > 0)
            ++workloads_with_fast_loads;
    }
    // The cross-check must have exercised real pairs, and the fast path
    // must pay off broadly (the issue's acceptance bar: probes
    // eliminated on at least 3 of the 5 workloads).
    EXPECT_GT(checked, 0u);
    EXPECT_GE(workloads_with_fast_loads, 3u);
}

// ---------------------------------------------------------------------------
// Exact-schedule oracle: unit fixtures, a provable greedy gap, budget
// semantics, lint integration, schedule adoption, and the five-workload
// sandwich height <= oracle <= greedy.

/**
 * Six unit-latency ALU nodes on a 2-ALU machine (issue model 3) where
 * tallest-first greedy provably loses a cycle: 0, 1, 2 are independent
 * roots, 3 and 4 need {0, 2}, 5 needs {1, 2}. Greedy issues the three
 * height-2 roots over two cycles ({0,1} then {2}), leaving all of 3, 4,
 * 5 for cycles 2-3: four cycles total. Optimal issues {0,2}, {1,3},
 * {4,5}: three. Found by exhaustive search over 6-node DAGs.
 */
ImageBlock
gapFixture()
{
    return blockOf({rrr(Opcode::ADD, 10, 1, 2), rrr(Opcode::ADD, 11, 1, 2),
                    rrr(Opcode::ADD, 12, 1, 2), rrr(Opcode::ADD, 13, 10, 12),
                    rrr(Opcode::ADD, 14, 10, 12),
                    rrr(Opcode::ADD, 15, 11, 12)});
}

TEST(AnalyzeOracle, EmptyBlockIsExactZero)
{
    const analyze::BlockOracle r =
        analyze::oracleBlock(blockOf({}), issueModel(8), 1);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.greedyLength, 0);
    EXPECT_EQ(r.lowerBound, 0);
    EXPECT_EQ(r.upperBound, 0);
    EXPECT_EQ(r.gap(), 0);
    EXPECT_TRUE(r.words.empty());
}

TEST(AnalyzeOracle, SingleNodeMakespanIsItsLatency)
{
    const ImageBlock alu = blockOf({rrr(Opcode::ADD, 10, 1, 2)});
    const analyze::BlockOracle ra = analyze::oracleBlock(alu, issueModel(8), 3);
    EXPECT_TRUE(ra.exact);
    EXPECT_EQ(ra.upperBound, 1);
    EXPECT_EQ(ra.greedyLength, 1);

    const ImageBlock mem = blockOf({load(Opcode::LW, 10, 4, 0)});
    const analyze::BlockOracle rm = analyze::oracleBlock(mem, issueModel(8), 3);
    EXPECT_TRUE(rm.exact);
    EXPECT_EQ(rm.height, 3);
    EXPECT_EQ(rm.upperBound, 3);
    EXPECT_EQ(rm.greedyLength, 3);
}

TEST(AnalyzeOracle, GreedyIsOptimalOnAChain)
{
    // A pure dependent chain leaves greedy no choices: oracle == greedy
    // == height, no gap, and no shorter schedule to adopt.
    const ImageBlock block = blockOf(
        {rrr(Opcode::ADD, 10, 1, 2), rrr(Opcode::ADD, 11, 10, 2),
         rrr(Opcode::ADD, 12, 11, 2), rrr(Opcode::ADD, 13, 12, 2)});
    const analyze::BlockOracle r =
        analyze::oracleBlock(block, issueModel(8), 1);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.height, 4);
    EXPECT_EQ(r.upperBound, 4);
    EXPECT_EQ(r.greedyLength, 4);
    EXPECT_EQ(r.gap(), 0);
    EXPECT_TRUE(r.words.empty());
}

TEST(AnalyzeOracle, DetectsGreedyOvershoot)
{
    const analyze::BlockOracle r =
        analyze::oracleBlock(gapFixture(), issueModel(3), 1);
    ASSERT_TRUE(r.exact);
    EXPECT_EQ(r.height, 2);
    EXPECT_EQ(r.greedyLength, 4);
    EXPECT_EQ(r.upperBound, 3);
    EXPECT_EQ(r.lowerBound, 3);
    EXPECT_EQ(r.gap(), 1);

    // The shorter schedule is materialized, packs legally (<= 2 ALU
    // nodes per word), and replays to the claimed makespan.
    ASSERT_FALSE(r.words.empty());
    ImageBlock adopted = gapFixture();
    adopted.words = r.words;
    std::size_t packed = 0;
    for (const Word &word : adopted.words) {
        EXPECT_LE(word.size(), 2u);
        packed += word.size();
    }
    EXPECT_EQ(packed, adopted.nodes.size());
    EXPECT_EQ(analyze::packedMakespan(adopted, 1), 3);
}

TEST(AnalyzeOracle, StateBudgetExhaustionCertifiesInterval)
{
    analyze::OracleOptions opts;
    opts.maxStates = 1;
    const analyze::BlockOracle r =
        analyze::oracleBlock(gapFixture(), issueModel(3), 1, opts);
    EXPECT_FALSE(r.exact);
    EXPECT_GE(r.lowerBound, r.height);
    EXPECT_EQ(r.upperBound, r.greedyLength);
    EXPECT_LE(r.lowerBound, r.upperBound);
    EXPECT_EQ(r.gap(), 0);
    EXPECT_TRUE(r.words.empty());
}

TEST(AnalyzeOracle, NodeBudgetSkipsTheSearch)
{
    analyze::OracleOptions opts;
    opts.maxNodes = 2;
    const analyze::BlockOracle r =
        analyze::oracleBlock(gapFixture(), issueModel(3), 1, opts);
    EXPECT_FALSE(r.exact);
    EXPECT_EQ(r.statesExplored, 0u);
    EXPECT_GE(r.lowerBound, r.height);
    EXPECT_EQ(r.upperBound, r.greedyLength);
}

TEST(AnalyzeOracle, LintGapAndBudgetCodes)
{
    EXPECT_EQ(verify::codeId(Code::GreedyScheduleGap), "AN009");
    EXPECT_EQ(verify::codeId(Code::OracleBudgetExhausted), "AN010");

    CodeImage image;
    image.blocks.push_back(gapFixture());
    image.entryBlock = -1;
    const MachineConfig config{Discipline::Static, issueModel(3),
                               memoryConfig('A'), BranchMode::Single};

    // Exact solve with a 1-cycle threshold: the proven gap fires AN009.
    const analyze::ImageOracle oracle = analyze::oracleImage(image, config);
    analyze::LintOptions lopts;
    lopts.oracle = &oracle;
    lopts.oracleGapCycles = 1;
    lopts.oracleHotNodes = 6;
    Report report;
    analyze::lintImage(image, report, lopts);
    EXPECT_TRUE(report.hasCode(Code::GreedyScheduleGap))
        << report.renderText();
    EXPECT_FALSE(report.hasCode(Code::OracleBudgetExhausted))
        << report.renderText();

    // Default thresholds (gap >= 2, hot >= 16 nodes): the same 1-cycle
    // gap on a small block stays silent.
    Report quiet;
    analyze::LintOptions defaults;
    defaults.oracle = &oracle;
    analyze::lintImage(image, quiet, defaults);
    EXPECT_FALSE(quiet.hasCode(Code::GreedyScheduleGap))
        << quiet.renderText();

    // Budget exhaustion on any block fires AN010 instead.
    analyze::OracleOptions oopts;
    oopts.maxStates = 1;
    const analyze::ImageOracle starved =
        analyze::oracleImage(image, config, oopts);
    analyze::LintOptions slopts;
    slopts.oracle = &starved;
    Report sreport;
    analyze::lintImage(image, sreport, slopts);
    EXPECT_TRUE(sreport.hasCode(Code::OracleBudgetExhausted))
        << sreport.renderText();
}

TEST(AnalyzeOracle, AdoptionHookInstallsTheShorterSchedule)
{
    // The hook is opt-in: this binary never sets FGP_ORACLE_SCHED.
    EXPECT_FALSE(analyze::oracleSchedEnabled());

    ImageBlock block = gapFixture();
    scheduleStatic(block, issueModel(3), 1);
    EXPECT_EQ(analyze::packedMakespan(block, 1), 4);

    const auto hook = analyze::oracleAdoptionHook();
    hook(block, issueModel(3), 1, nullptr);
    EXPECT_EQ(analyze::packedMakespan(block, 1), 3);
}

TEST(AnalyzeOracle, AdoptionHookKeepsOptimalGreedySchedules)
{
    // When greedy already matches the oracle the words are untouched —
    // with the hook never installed (the FGP_ORACLE_SCHED=0 default)
    // translation is bit-identical by construction.
    ImageBlock block = blockOf(
        {rrr(Opcode::ADD, 10, 1, 2), rrr(Opcode::ADD, 11, 10, 2),
         rrr(Opcode::ADD, 12, 11, 2)});
    scheduleStatic(block, issueModel(3), 1);
    const std::vector<Word> greedy = block.words;
    const auto hook = analyze::oracleAdoptionHook();
    hook(block, issueModel(3), 1, nullptr);
    EXPECT_EQ(block.words, greedy);
}

TEST(AnalyzeChains, OracleRankingHookPreservesTheChainSet)
{
    const Program &prog = loopProgram();
    const CodeImage single = buildCfg(prog);
    const Profile profile = profileOf(prog);

    EnlargeOptions opts;
    opts.auditHook = analyze::oracleRankingHook(issueModel(8), 1);
    const EnlargePlan ranked = planEnlargement(single, profile, opts);
    const EnlargePlan plain = planEnlargement(single, profile);
    ASSERT_EQ(ranked.chains.size(), plain.chains.size());

    const CodeImage enlarged = applyEnlargement(single, ranked);
    EXPECT_GT(enlarged.blocks.size(), single.blocks.size());
}

TEST(AnalyzeOracle, SandwichHoldsOnAllWorkloads)
{
    // oracleImage() itself asserts height <= upper and upper <= greedy
    // on every block (a violation panics); this re-checks the interval
    // invariants from outside and demands full exactness at the default
    // budget on every workload under three machine shapes.
    const std::vector<std::string> configs = {
        "static/4A/enlarged", "dyn4/8A/enlarged", "static/8A/single"};
    for (const std::string &name : workloadNames()) {
        const Workload workload = makeWorkload(name);
        const Program &prog = workload.program();
        const CodeImage single = buildCfg(prog);

        Profile profile;
        SimOS os;
        workload.prepareOs(os, InputSet::Profile);
        InterpOptions iopts;
        iopts.profile = &profile;
        interpret(prog, os, iopts);

        for (const std::string &cfg : configs) {
            const MachineConfig config = parseMachineConfig(cfg);
            CodeImage image = config.branch == BranchMode::Single
                                  ? buildCfg(prog)
                                  : applyEnlargement(
                                        single,
                                        planEnlargement(single, profile));
            translate(image, config);

            const analyze::ImageOracle oracle =
                analyze::oracleImage(image, config);
            ASSERT_EQ(oracle.blocks.size(), image.blocks.size())
                << name << " " << cfg;
            EXPECT_EQ(oracle.exactBlocks, oracle.blocks.size())
                << name << " " << cfg;
            EXPECT_EQ(oracle.exhaustedBlocks, 0u) << name << " " << cfg;
            EXPECT_LE(oracle.oracleCycles, oracle.greedyCycles)
                << name << " " << cfg;
            for (const analyze::BlockOracle &b : oracle.blocks) {
                EXPECT_LE(b.height, b.upperBound) << name << " " << cfg;
                EXPECT_LE(b.lowerBound, b.upperBound) << name << " " << cfg;
                EXPECT_LE(b.upperBound, b.greedyLength) << name << " " << cfg;
                EXPECT_GE(b.gap(), 0) << name << " " << cfg;
            }
        }
    }
}

} // namespace
} // namespace fgp
