/**
 * Differential-observability invariants (src/diff): the zero-residual
 * slot attribution of every aligned window pair on real runs of all
 * workloads, exact schedule-divergence pinpointing on seeded
 * perturbations, the folded-stack export golden, and stream
 * loading/joining semantics.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "diff/diff.hh"
#include "diff/flame.hh"
#include "diff/stream.hh"
#include "harness/experiment.hh"
#include "profile/profile.hh"
#include "profile/record.hh"

namespace fgp {
namespace {

MachineConfig
cfg(Discipline d, int issue, char mem, BranchMode branch)
{
    return {d, issueModel(issue), memoryConfig(mem), branch};
}

/** Fold one profiled run into the differ's cell shape. */
diff::CellStream
toCell(const std::string &workload, const std::string &config,
       const ExperimentResult &r)
{
    diff::CellStream cell;
    cell.workload = workload;
    cell.config = config;
    cell.issueWidth = static_cast<std::uint64_t>(r.engine.issueWidth);
    cell.windowCycles = r.profile.windowCycles;
    cell.cycles = r.engine.cycles;
    cell.issuedNodes = r.engine.issuedNodes;
    cell.retiredNodes = r.engine.retiredNodes;
    cell.critPathCycles = r.profile.critPath.pathCycles;
    for (const profile::WindowSample &w : r.profile.windows) {
        diff::CellWindow win;
        win.index = w.index;
        win.startCycle = w.startCycle;
        win.cycles = w.cycles;
        win.issuedNodes = w.issuedNodes;
        win.retiredNodes = w.retiredNodes;
        win.mispredicts = w.mispredicts;
        win.slots = {w.stalls.fetchRedirectSlots, w.stalls.fetchIdleSlots,
                     w.stalls.windowFullSlots, w.stalls.shortWordSlots,
                     w.stalls.drainSlots};
        win.waits = {w.stalls.operandWaitNodeCycles,
                     w.stalls.memoryWaitNodeCycles,
                     w.stalls.serializeWaitNodeCycles,
                     w.stalls.fuBusyNodeCycles};
        win.hasHash = true;
        win.schedHash = w.schedHash;
        cell.windows.push_back(win);
    }
    return cell;
}

/**
 * The tentpole identity on real runs: diff a baseline against a
 * conservative-loads run of every workload and require each aligned
 * window's IPC delta to decompose into the stall-slot breakdown with
 * zero residual. Holds even though B's schedule (and window count)
 * genuinely differs — the identity telescopes per side.
 */
TEST(Diff, AttributionClosesOnAllWorkloads)
{
    const MachineConfig config =
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged);

    ExperimentRunner::EngineTweaks base;
    base.profileWindow = 2000;
    ExperimentRunner::EngineTweaks conservative = base;
    conservative.conservativeLoads = true;

    for (const std::string &name : workloadNames()) {
        SCOPED_TRACE(name);
        ExperimentRunner runner_a(0.2);
        runner_a.setEngineTweaks(base);
        const ExperimentResult ra = runner_a.run(name, config);
        ExperimentRunner runner_b(0.2);
        runner_b.setEngineTweaks(conservative);
        const ExperimentResult rb = runner_b.run(name, config);
        ASSERT_TRUE(ra.profile.enabled);
        ASSERT_TRUE(rb.profile.enabled);

        const diff::CellStream a = toCell(name, "dyn4/8A/enlarged", ra);
        const diff::CellStream b = toCell(name, "dyn4/8A/enlarged", rb);
        const diff::CellDiff d = diff::diffCells(a, b);

        ASSERT_FALSE(d.windows.empty());
        std::int64_t d_issued = 0, d_slots = 0, d_causes = 0;
        for (const diff::WindowDelta &w : d.windows) {
            EXPECT_EQ(w.residual(), 0)
                << "window " << w.index << " residual";
            d_issued += static_cast<std::int64_t>(w.issuedB) -
                        static_cast<std::int64_t>(w.issuedA);
            d_slots += static_cast<std::int64_t>(w.slotsB) -
                       static_cast<std::int64_t>(w.slotsA);
            for (const std::int64_t c : w.dSlots)
                d_causes += c;
        }
        // The per-window identities telescope to the aligned prefix.
        EXPECT_EQ(d_slots, d_issued + d_causes);

        // Different schedules: the hashes must say so (conservative
        // loads serialize memory, so B cannot match A).
        EXPECT_TRUE(d.divergence.diverged());
    }
}

/** A deterministic synthetic retired log: seq-ordered, windowed. */
std::vector<profile::RetiredNode>
syntheticLog(std::size_t n)
{
    std::vector<profile::RetiredNode> log;
    log.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        profile::RetiredNode node;
        node.seq = i + 1;
        node.parentSeq = i / 3;
        node.issueCycle = static_cast<std::uint32_t>(i / 4);
        node.readyCycle = static_cast<std::uint32_t>(i / 4 + 1);
        node.schedCycle = static_cast<std::uint32_t>(i / 4 + 2);
        node.completeCycle = static_cast<std::uint32_t>(i / 4 + 3);
        node.block = static_cast<std::uint32_t>(i % 7);
        node.edge = static_cast<profile::EdgeKind>(i % 6);
        log.push_back(node);
    }
    return log;
}

TEST(Diff, PinpointsSeededSingleNodeDivergence)
{
    const std::vector<profile::RetiredNode> a = syntheticLog(1000);
    // 10 windows of 100 retired nodes each.
    const std::vector<std::uint64_t> cuts(10, 100);

    std::vector<profile::RetiredNode> b = a;
    b[537].schedCycle += 11; // seed: one node, one field, window 5

    const diff::WindowedLog wa = diff::buildWindowedLog(a, cuts);
    const diff::WindowedLog wb = diff::buildWindowedLog(b, cuts);
    ASSERT_EQ(wa.windowEnds.size(), 10u);

    const diff::Divergence div = diff::pinpointDivergence(wa, wb);
    EXPECT_EQ(div.level, diff::Divergence::Level::Node);
    EXPECT_EQ(div.firstWindow, 5u);
    EXPECT_EQ(div.logIndex, 537u);
    EXPECT_EQ(div.seq, 538u);
    EXPECT_EQ(div.field, "sched_cycle");
    EXPECT_EQ(div.valueA, a[537].schedCycle);
    EXPECT_EQ(div.valueB, b[537].schedCycle);
    EXPECT_FALSE(div.truncated);
    EXPECT_NE(div.hashA, div.hashB);

    // The binary search is symmetric in its verdict.
    const diff::Divergence rev = diff::pinpointDivergence(wb, wa);
    EXPECT_EQ(rev.level, diff::Divergence::Level::Node);
    EXPECT_EQ(rev.logIndex, 537u);
    EXPECT_EQ(rev.field, "sched_cycle");
}

TEST(Diff, IdenticalLogsReportIdentical)
{
    const std::vector<profile::RetiredNode> a = syntheticLog(250);
    const std::vector<std::uint64_t> cuts = {100, 100, 50};
    const diff::WindowedLog wa = diff::buildWindowedLog(a, cuts);
    const diff::WindowedLog wb = diff::buildWindowedLog(a, cuts);
    const diff::Divergence div = diff::pinpointDivergence(wa, wb);
    EXPECT_EQ(div.level, diff::Divergence::Level::Identical);
    EXPECT_FALSE(div.diverged());
}

TEST(Diff, TruncatedLogIsReportedAsTruncation)
{
    const std::vector<profile::RetiredNode> a = syntheticLog(300);
    std::vector<profile::RetiredNode> b(a.begin(), a.begin() + 210);
    const diff::WindowedLog wa =
        diff::buildWindowedLog(a, {100, 100, 100});
    const diff::WindowedLog wb = diff::buildWindowedLog(b, {100, 100, 10});
    const diff::Divergence div = diff::pinpointDivergence(wa, wb);
    EXPECT_EQ(div.level, diff::Divergence::Level::Node);
    EXPECT_TRUE(div.truncated);
    EXPECT_EQ(div.field, "log_length");
    EXPECT_EQ(div.firstWindow, 2u);
}

TEST(Diff, FirstDivergentNodeBeatsLaterOnes)
{
    const std::vector<profile::RetiredNode> a = syntheticLog(400);
    std::vector<profile::RetiredNode> b = a;
    b[42].block += 1;
    b[301].completeCycle += 5; // later drift must not win
    const diff::WindowedLog wa = diff::buildWindowedLog(a, {200, 200});
    const diff::WindowedLog wb = diff::buildWindowedLog(b, {200, 200});
    const diff::Divergence div = diff::pinpointDivergence(wa, wb);
    EXPECT_EQ(div.level, diff::Divergence::Level::Node);
    EXPECT_EQ(div.logIndex, 42u);
    EXPECT_EQ(div.field, "block");
    EXPECT_EQ(div.firstWindow, 0u);
}

/** Hand-built cell: two blocks with joint causes, stable golden. */
TEST(Diff, FoldedStackExportGolden)
{
    diff::CellDiff cell;
    cell.workload = "sort";
    cell.config = "dyn4/8A/enlarged";

    diff::BlockDelta b0;
    b0.block = 3;
    b0.entryPc = 19;
    b0.hasCauses = true;
    b0.causesA[static_cast<std::size_t>(profile::CritCause::Operand)] = 40;
    b0.causesB[static_cast<std::size_t>(profile::CritCause::Operand)] = 55;
    b0.causesA[static_cast<std::size_t>(profile::CritCause::Memory)] = 7;
    b0.causesB[static_cast<std::size_t>(profile::CritCause::Memory)] = 7;
    diff::BlockDelta b1;
    b1.block = 9;
    b1.entryPc = -1; // no pc known: frame stays block_9
    b1.hasCauses = true;
    b1.causesA[static_cast<std::size_t>(profile::CritCause::Fetch)] = 12;
    b1.causesB[static_cast<std::size_t>(profile::CritCause::Fetch)] = 3;
    cell.blocks = {b0, b1};

    std::ostringstream out;
    const std::size_t lines = diff::writeFoldedDiff(out, cell);
    EXPECT_EQ(lines, 3u);
    EXPECT_EQ(out.str(),
              "sort;dyn4/8A/enlarged;block_3@pc19;operand 40 55\n"
              "sort;dyn4/8A/enlarged;block_3@pc19;memory 7 7\n"
              "sort;dyn4/8A/enlarged;block_9;fetch 12 3\n");
}

TEST(Diff, FoldedStackFallsBackWithoutJointCauses)
{
    diff::CellDiff cell;
    cell.workload = "w";
    cell.config = "c";
    diff::BlockDelta blk;
    blk.block = 2;
    blk.entryPc = 5;
    blk.a = 10;
    blk.b = 12;
    blk.hasCauses = false;
    cell.blocks = {blk};
    diff::CauseDelta cause;
    cause.cause = "operand";
    cause.a = 30;
    cause.b = 31;
    cell.causes = {cause};

    // Block-level stacks win over cause-level when blocks exist.
    std::ostringstream out;
    EXPECT_EQ(diff::writeFoldedDiff(out, cell), 1u);
    EXPECT_EQ(out.str(), "w;c;block_2@pc5 10 12\n");

    cell.blocks.clear();
    std::ostringstream causes_only;
    EXPECT_EQ(diff::writeFoldedDiff(causes_only, cell), 1u);
    EXPECT_EQ(causes_only.str(), "w;c;operand 30 31\n");
}

/** Minimal textual streams drive the loader + join end to end. */
TEST(Diff, StreamJoinReportsUnmatchedCells)
{
    const std::string a_text =
        "{\"schema\":\"fgpsim-run-v1\",\"kind\":\"run\",\"bench\":\"x\"}\n"
        "{\"kind\":\"point\",\"workload\":\"sort\",\"config\":\"c1\","
        "\"cycles\":100,\"issued_nodes\":300,\"issue_width\":4,"
        "\"nodes_per_cycle\":2.0,\"stall_fetch_redirect\":20,"
        "\"stall_fetch_idle\":30,\"stall_window_full\":25,"
        "\"stall_short_word\":15,\"stall_drain\":10}\n"
        "{\"kind\":\"point\",\"workload\":\"grep\",\"config\":\"c1\","
        "\"cycles\":50,\"issued_nodes\":120,\"issue_width\":4,"
        "\"nodes_per_cycle\":1.5,\"stall_fetch_redirect\":30,"
        "\"stall_fetch_idle\":20,\"stall_window_full\":10,"
        "\"stall_short_word\":15,\"stall_drain\":5}\n";
    const std::string b_text =
        "{\"schema\":\"fgpsim-run-v1\",\"kind\":\"run\",\"bench\":\"x\"}\n"
        "{\"kind\":\"point\",\"workload\":\"sort\",\"config\":\"c1\","
        "\"cycles\":120,\"issued_nodes\":310,\"issue_width\":4,"
        "\"nodes_per_cycle\":1.8,\"stall_fetch_redirect\":40,"
        "\"stall_fetch_idle\":50,\"stall_window_full\":35,"
        "\"stall_short_word\":25,\"stall_drain\":20}\n"
        "{\"kind\":\"point\",\"workload\":\"cpp\",\"config\":\"c1\","
        "\"cycles\":10,\"issued_nodes\":30,\"issue_width\":4,"
        "\"nodes_per_cycle\":1.0,\"stall_fetch_redirect\":4,"
        "\"stall_fetch_idle\":3,\"stall_window_full\":2,"
        "\"stall_short_word\":1,\"stall_drain\":0}\n";

    std::istringstream ia(a_text), ib(b_text);
    const diff::Stream a = diff::loadStream(ia, "a");
    const diff::Stream b = diff::loadStream(ib, "b");
    ASSERT_EQ(a.cells.size(), 2u);
    ASSERT_EQ(b.cells.size(), 2u);

    const diff::DiffResult result = diff::diffStreams(a, b);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_EQ(result.cells[0].workload, "sort");
    ASSERT_EQ(result.onlyA.size(), 1u);
    EXPECT_EQ(result.onlyA[0], "grep c1");
    ASSERT_EQ(result.onlyB.size(), 1u);
    EXPECT_EQ(result.onlyB[0], "cpp c1");

    // Manifests carry no windows, so the loader synthesizes one
    // run-spanning window per cell from the whole-run stall totals —
    // and the differential slot identity must close on it too:
    // A: 300 issued + 100 stalls == 100 cycles * width 4;
    // B: 310 issued + 170 stalls == 120 cycles * width 4.
    const diff::CellDiff &sort_cell = result.cells[0];
    ASSERT_EQ(sort_cell.windows.size(), 1u);
    EXPECT_EQ(sort_cell.windows[0].residual(), 0);
    EXPECT_EQ(sort_cell.windows[0].slotsA, 400u);
    EXPECT_EQ(sort_cell.windows[0].slotsB, 480u);
}

TEST(Diff, ProfileStreamHashesReachDivergence)
{
    // Two single-window profile streams whose hashes differ: without
    // retired logs the differ must still flag run-level divergence via
    // the window fingerprints.
    const char *fmt =
        "{\"schema\":\"fgpsim-profile-v1\",\"kind\":\"profile\","
        "\"workload\":\"sort\",\"config\":\"c\",\"issue_width\":4,"
        "\"window_cycles\":100,\"cycles\":100,\"issued_nodes\":300,"
        "\"retired_nodes\":200,\"nodes_per_cycle\":2.0,"
        "\"crit_path_cycles\":80,\"sched_hash\":\"%s\"}\n"
        "{\"kind\":\"window\",\"index\":0,\"start_cycle\":0,"
        "\"cycles\":100,\"issued_nodes\":300,\"retired_nodes\":200,"
        "\"stall_fetch_redirect\":40,\"stall_fetch_idle\":30,"
        "\"stall_window_full\":20,\"stall_short_word\":10,"
        "\"stall_drain\":0,\"sched_hash\":\"%s\"}\n";
    char a_text[1024], b_text[1024];
    std::snprintf(a_text, sizeof a_text, fmt, "0xaaaaaaaaaaaaaaaa",
                  "0xaaaaaaaaaaaaaaaa");
    std::snprintf(b_text, sizeof b_text, fmt, "0xbbbbbbbbbbbbbbbb",
                  "0xbbbbbbbbbbbbbbbb");

    std::istringstream ia{std::string(a_text)}, ib{std::string(b_text)};
    const diff::Stream a = diff::loadStream(ia, "a");
    const diff::Stream b = diff::loadStream(ib, "b");
    const diff::CellDiff d = diff::diffCells(a.cells[0], b.cells[0]);
    EXPECT_EQ(d.divergence.level, diff::Divergence::Level::Window);
    EXPECT_EQ(d.divergence.firstWindow, 0u);
    ASSERT_EQ(d.windows.size(), 1u);
    EXPECT_EQ(d.windows[0].residual(), 0);
}

} // namespace
} // namespace fgp
