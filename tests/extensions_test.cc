/**
 * Tests for the extensions beyond the paper's baseline: return-address
 * stack, profile static hints, fault-target prediction, window override
 * and conservative disambiguation — including golden-model equivalence
 * with every extension enabled at once.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "branch/predictor.hh"
#include "bbe/enlarge.hh"
#include "harness/experiment.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "vm/interp.hh"

namespace fgp {
namespace {

MachineConfig
cfg(Discipline d, int issue, char mem, BranchMode branch)
{
    return {d, issueModel(issue), memoryConfig(mem), branch};
}

TEST(Ras, PushPopLifo)
{
    PredictorOptions opts;
    opts.rasDepth = 4;
    BranchPredictor bp(opts);
    EXPECT_TRUE(bp.rasEnabled());
    bp.pushReturn(10);
    bp.pushReturn(20);
    EXPECT_EQ(bp.popReturn(), 20);
    EXPECT_EQ(bp.popReturn(), 10);
    EXPECT_EQ(bp.popReturn(), -1); // empty
}

TEST(Ras, OverflowDropsOldest)
{
    PredictorOptions opts;
    opts.rasDepth = 2;
    BranchPredictor bp(opts);
    bp.pushReturn(1);
    bp.pushReturn(2);
    bp.pushReturn(3); // drops 1
    EXPECT_EQ(bp.popReturn(), 3);
    EXPECT_EQ(bp.popReturn(), 2);
    EXPECT_EQ(bp.popReturn(), -1);
}

TEST(Ras, DisabledIsNoop)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.rasEnabled());
    bp.pushReturn(10);
    EXPECT_EQ(bp.popReturn(), -1);
}

TEST(ProfileHints, OverrideColdPrediction)
{
    std::unordered_map<std::int32_t, bool> hints;
    hints[100] = false; // forward... backward branch hinted not-taken
    hints[200] = true;  // forward branch hinted taken

    PredictorOptions opts;
    opts.staticHint = StaticHint::Profile;
    opts.profileHints = &hints;
    BranchPredictor bp(opts);

    // pc 100 branching backward would be BTFN-taken; the hint wins.
    EXPECT_FALSE(bp.predictConditional(100, 50));
    // pc 200 branching forward would be BTFN-not-taken; the hint wins.
    EXPECT_TRUE(bp.predictConditional(200, 300));
    // No hint: fall back to BTFN.
    EXPECT_TRUE(bp.predictConditional(300, 10));
}

TEST(ProfileHints, RequireTable)
{
    PredictorOptions opts;
    opts.staticHint = StaticHint::Profile;
    EXPECT_THROW(BranchPredictor bp(opts), FatalError);
}

TEST(Extensions, RasReducesReturnMispredicts)
{
    // compress calls out_char from two alternating sites in its hot
    // loop, which defeats a last-target predictor; a RAS nails it.
    const MachineConfig config =
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Enlarged);

    ExperimentRunner base(0.5);
    const ExperimentResult without = base.run("compress", config);

    ExperimentRunner with_ras(0.5);
    ExperimentRunner::EngineTweaks tweaks;
    tweaks.rasDepth = 16;
    with_ras.setEngineTweaks(tweaks);
    const ExperimentResult with = with_ras.run("compress", config);

    EXPECT_LT(with.engine.mispredicts, without.engine.mispredicts / 2);
    EXPECT_GT(with.nodesPerCycle, without.nodesPerCycle);
}

TEST(Extensions, FaultTargetPredictionReducesFaults)
{
    // A loop whose branch bias FLIPS between the profile run and the
    // measurement run: enlargement fuses the profile-hot path, so the
    // measurement run faults almost every iteration — unless the
    // fault-target chooser learns to fetch the companion directly.
    const char *source = R"(
main:   li   r8, 200
        li   r9, 0
        la   r20, mode
        lw   r21, 0(r20)     # 0 in profile-like run, 1 in measure-like
loop:   beqz r21, cold       # profile: taken; measurement: not taken
        addi r9, r9, 1
        j    next
cold:   addi r9, r9, 2
next:   addi r8, r8, -1
        bnez r8, loop
        andi a0, r9, 0xff
        li   v0, 0
        syscall
        .data
mode:   .word 0
)";
    // Build the profile with mode=0 (branch not taken each iteration...
    // beqz r21 with r21=0 is TAKEN), then measure with mode=1 (fall
    // through). Patch the data byte between runs.
    Program prog = assemble(source, "flip");

    Profile profile;
    {
        SimOS os;
        InterpOptions opts;
        opts.profile = &profile;
        interpret(prog, os, opts);
    }
    // Flip the mode word for the measured run.
    prog.data[0] = 1;

    const CodeImage single = buildCfg(prog);
    EnlargeOptions eopts;
    eopts.minArcCount = 8;
    CodeImage enlarged = enlarge(single, profile, eopts);

    const MachineConfig config =
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged);

    auto run = [&](bool predict_faults) {
        CodeImage image = enlarged;
        translate(image, config);
        SimOS os;
        EngineOptions opts;
        opts.config = config;
        opts.predictFaultTargets = predict_faults;
        return simulate(image, os, opts);
    };

    const EngineResult plain = run(false);
    const EngineResult chooser = run(true);
    ASSERT_GT(plain.faultsFired, 50u) << "test premise: many faults";
    EXPECT_LT(chooser.faultsFired, plain.faultsFired / 4);
    EXPECT_EQ(chooser.exitCode, plain.exitCode);
    EXPECT_LE(chooser.cycles, plain.cycles);
}

TEST(Extensions, WindowOverrideCapsOccupancy)
{
    for (int window : {1, 3, 7, 32}) {
        ExperimentRunner runner(0.1);
        ExperimentRunner::EngineTweaks tweaks;
        tweaks.windowOverride = window;
        runner.setEngineTweaks(tweaks);
        const ExperimentResult r = runner.run(
            "grep", cfg(Discipline::Dyn256, 8, 'A', BranchMode::Single));
        EXPECT_LE(r.engine.windowOccupancy.max(),
                  static_cast<std::uint64_t>(window));
    }
}

TEST(Extensions, WindowGrowthHelps)
{
    auto npc_at = [](int window) {
        ExperimentRunner runner(0.4);
        ExperimentRunner::EngineTweaks tweaks;
        tweaks.windowOverride = window;
        runner.setEngineTweaks(tweaks);
        return runner
            .run("diff", cfg(Discipline::Dyn256, 8, 'A',
                             BranchMode::Enlarged))
            .nodesPerCycle;
    };
    const double w1 = npc_at(1);
    const double w4 = npc_at(4);
    const double w64 = npc_at(64);
    EXPECT_GT(w4, w1);
    EXPECT_GE(w64, w4 * 0.98);
}

TEST(Extensions, ConservativeLoadsSlowerButCorrect)
{
    const MachineConfig config =
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Enlarged);

    ExperimentRunner fast(0.4);
    const double dynamic = fast.meanNodesPerCycle(config);

    ExperimentRunner slow(0.4);
    ExperimentRunner::EngineTweaks tweaks;
    tweaks.conservativeLoads = true;
    slow.setEngineTweaks(tweaks); // run() checks outputs internally
    const double conservative = slow.meanNodesPerCycle(config);

    EXPECT_LE(conservative, dynamic + 1e-9);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // A strictly alternating branch defeats a 2-bit counter but is a
    // one-bit-of-history pattern gshare captures perfectly.
    PredictorOptions gopts;
    gopts.direction = DirectionPredictor::Gshare;
    gopts.gshareBits = 10;
    BranchPredictor gshare(gopts);
    BranchPredictor twobit;

    int gshare_wrong = 0;
    int twobit_wrong = 0;
    bool taken = false;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        gshare_wrong += gshare.predictConditional(7, 3) != taken;
        gshare.updateConditional(7, taken);
        twobit_wrong += twobit.predictConditional(7, 3) != taken;
        twobit.updateConditional(7, taken);
    }
    EXPECT_LT(gshare_wrong, 30);   // warms up, then perfect
    EXPECT_GT(twobit_wrong, 150);  // counter thrashes
}

TEST(Gshare, RejectsBadTableSize)
{
    PredictorOptions opts;
    opts.direction = DirectionPredictor::Gshare;
    opts.gshareBits = 2;
    EXPECT_THROW(BranchPredictor bp(opts), FatalError);
}

TEST(Gshare, EndToEndEquivalence)
{
    ExperimentRunner runner(0.2);
    ExperimentRunner::EngineTweaks tweaks;
    tweaks.direction = DirectionPredictor::Gshare;
    runner.setEngineTweaks(tweaks);
    // run() checks architectural outputs internally.
    for (const std::string &wl : workloadNames()) {
        const ExperimentResult r = runner.run(
            wl, cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged));
        EXPECT_TRUE(r.engine.exited) << wl;
    }
}

TEST(CustomIssue, ShapesWork)
{
    const IssueModel shape = customIssue(3, 5);
    EXPECT_EQ(shape.memSlots, 3);
    EXPECT_EQ(shape.aluSlots, 5);
    EXPECT_EQ(shape.width(), 8);
    EXPECT_FALSE(shape.sequential);
    EXPECT_THROW(customIssue(0, 4), FatalError);

    ExperimentRunner runner(0.15);
    const ExperimentResult r = runner.run(
        "grep", {Discipline::Dyn4, shape, memoryConfig('A'),
                 BranchMode::Single});
    EXPECT_TRUE(r.engine.exited);
    EXPECT_LE(r.engine.nodesPerCycle(), 8.0 + 1e-9);
}

TEST(WindowMetrics, InvariantsHold)
{
    ExperimentRunner runner(0.3);
    const ExperimentResult r = runner.run(
        "diff", cfg(Discipline::Dyn256, 8, 'A', BranchMode::Enlarged));
    // ready <= active <= valid, on average.
    EXPECT_LE(r.engine.readyNodes.mean(), r.engine.activeNodes.mean());
    EXPECT_LE(r.engine.activeNodes.mean(), r.engine.validNodes.mean());
    EXPECT_GT(r.engine.validNodes.mean(), 0.0);
}

/** All extensions on at once: architectural equivalence must hold. */
class AllTweaksGolden : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllTweaksGolden, EngineMatchesVm)
{
    ExperimentRunner runner(0.15);
    ExperimentRunner::EngineTweaks tweaks;
    tweaks.staticHint = StaticHint::Profile;
    tweaks.rasDepth = 16;
    tweaks.predictFaultTargets = true;
    tweaks.direction = DirectionPredictor::Gshare;
    runner.setEngineTweaks(tweaks);

    for (Discipline d : allDisciplines()) {
        for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged}) {
            // run() panics on architectural divergence.
            const ExperimentResult r =
                runner.run(GetParam(), cfg(d, 8, 'G', bm));
            EXPECT_TRUE(r.engine.exited);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, AllTweaksGolden,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace fgp
