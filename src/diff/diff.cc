#include "diff/diff.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "base/logging.hh"

namespace fgp::diff {

const char *
divergenceLevelName(Divergence::Level level)
{
    switch (level) {
      case Divergence::Level::None:
        return "none";
      case Divergence::Level::Identical:
        return "identical";
      case Divergence::Level::Run:
        return "run";
      case Divergence::Level::Window:
        return "window";
      case Divergence::Level::Node:
        return "node";
    }
    return "?";
}

WindowedLog
buildWindowedLog(const std::vector<profile::RetiredNode> &log,
                 const std::vector<std::uint64_t> &window_retired)
{
    WindowedLog wl;
    wl.log = &log;
    std::uint64_t hash = profile::kFnvOffsetBasis;
    std::size_t idx = 0;
    const auto advance = [&](std::size_t end) {
        end = std::min(end, log.size());
        for (; idx < end; ++idx)
            hash = profile::fnvRetired(hash, log[idx]);
        wl.windowEnds.push_back(idx);
        wl.windowHashes.push_back(hash);
    };
    if (window_retired.empty()) {
        advance(log.size());
        return wl;
    }
    std::size_t end = 0;
    for (const std::uint64_t count : window_retired) {
        end += static_cast<std::size_t>(count);
        advance(end);
    }
    // Any log tail beyond the declared windows still gets hashed, so
    // truncated window lists cannot hide a divergence in the tail.
    if (idx < log.size())
        advance(log.size());
    return wl;
}

namespace {

/** First divergent retired node in [start_a, ...) x [start_b, ...). */
void
scanNodes(const WindowedLog &a, const WindowedLog &b, std::size_t start,
          Divergence &out)
{
    const auto &la = *a.log;
    const auto &lb = *b.log;
    std::size_t i = std::min(start, std::min(la.size(), lb.size()));
    for (; i < la.size() && i < lb.size(); ++i) {
        const profile::RetiredNode &x = la[i];
        const profile::RetiredNode &y = lb[i];
        struct FieldRef
        {
            const char *name;
            std::uint64_t a, b;
        };
        const FieldRef fields[] = {
            {"seq", x.seq, y.seq},
            {"parent_seq", x.parentSeq, y.parentSeq},
            {"issue_cycle", x.issueCycle, y.issueCycle},
            {"ready_cycle", x.readyCycle, y.readyCycle},
            {"sched_cycle", x.schedCycle, y.schedCycle},
            {"complete_cycle", x.completeCycle, y.completeCycle},
            {"block", x.block, y.block},
            {"edge", static_cast<std::uint64_t>(x.edge),
             static_cast<std::uint64_t>(y.edge)},
        };
        for (const FieldRef &f : fields) {
            if (f.a != f.b) {
                out.level = Divergence::Level::Node;
                out.seq = x.seq;
                out.logIndex = i;
                out.field = f.name;
                out.valueA = f.a;
                out.valueB = f.b;
                return;
            }
        }
    }
    if (la.size() != lb.size()) {
        // Common prefix identical; the divergence is the missing tail.
        out.level = Divergence::Level::Node;
        out.truncated = true;
        out.logIndex = std::min(la.size(), lb.size());
        out.seq = la.size() > lb.size() ? la[out.logIndex].seq
                                        : lb[out.logIndex].seq;
        out.field = "log_length";
        out.valueA = la.size();
        out.valueB = lb.size();
    }
}

} // namespace

Divergence
pinpointDivergence(const WindowedLog &a, const WindowedLog &b)
{
    Divergence out;
    const std::size_t common =
        std::min(a.windowHashes.size(), b.windowHashes.size());

    // Cumulative hashes are monotone-divergent: equal at window i means
    // the logs agree through i, unequal stays unequal afterwards. So
    // the first divergent window is the lower bound of "hashes differ".
    std::size_t lo = 0, hi = common;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (a.windowHashes[mid] != b.windowHashes[mid])
            hi = mid;
        else
            lo = mid + 1;
    }

    if (lo == common) {
        // No mismatch in the common prefix; differing log lengths (a
        // longer run, or extra tail windows) are still a divergence.
        if (a.log->size() == b.log->size() &&
            a.windowHashes.size() == b.windowHashes.size()) {
            out.level = Divergence::Level::Identical;
            return out;
        }
        out.firstWindow = common;
        out.truncated = true;
    } else {
        out.firstWindow = lo;
        out.hashA = a.windowHashes[lo];
        out.hashB = b.windowHashes[lo];
    }

    // Scan for the exact node starting at the identical prefix's end.
    const std::size_t start =
        out.firstWindow == 0
            ? 0
            : std::min(a.windowEnds[out.firstWindow - 1],
                       b.windowEnds[out.firstWindow - 1]);
    const Divergence::Level window_level = Divergence::Level::Window;
    out.level = window_level;
    scanNodes(a, b, start, out);
    if (out.level == window_level && start > 0) {
        // Hash mismatch but no field mismatch in the slice — only
        // possible if the prefix hashes collided; rescan everything.
        scanNodes(a, b, 0, out);
    }
    return out;
}

namespace {

void
diffWindows(const CellStream &a, const CellStream &b, CellDiff &out)
{
    const std::size_t common =
        std::min(a.windows.size(), b.windows.size());
    out.windowsTruncated = a.windows.size() != b.windows.size();
    out.windows.reserve(common);
    for (std::size_t i = 0; i < common; ++i) {
        const CellWindow &x = a.windows[i];
        const CellWindow &y = b.windows[i];
        WindowDelta d;
        d.index = x.index;
        d.cyclesA = x.cycles;
        d.cyclesB = y.cycles;
        d.issuedA = x.issuedNodes;
        d.issuedB = y.issuedNodes;
        d.retiredA = x.retiredNodes;
        d.retiredB = y.retiredNodes;
        d.slotsA = x.cycles * a.issueWidth;
        d.slotsB = y.cycles * b.issueWidth;
        for (std::size_t c = 0; c < kSlotCauseCount; ++c)
            d.dSlots[c] = static_cast<std::int64_t>(y.slots[c]) -
                          static_cast<std::int64_t>(x.slots[c]);
        for (std::size_t c = 0; c < kWaitCount; ++c)
            d.dWaits[c] = static_cast<std::int64_t>(y.waits[c]) -
                          static_cast<std::int64_t>(x.waits[c]);
        d.ipcA = x.cycles ? static_cast<double>(x.retiredNodes) /
                                static_cast<double>(x.cycles)
                          : 0.0;
        d.ipcB = y.cycles ? static_cast<double>(y.retiredNodes) /
                                static_cast<double>(y.cycles)
                          : 0.0;
        out.windows.push_back(d);
    }
}

void
diffCauses(const CellStream &a, const CellStream &b, CellDiff &out)
{
    // Canonical CritCause order first, then any unknown names either
    // stream carried (future-proofing against new causes).
    std::vector<std::string> order;
    for (std::size_t c = 0; c < profile::kCritCauseCount; ++c)
        order.push_back(profile::critCauseName(
            static_cast<profile::CritCause>(c)));
    for (const auto *cell : {&a, &b})
        for (const auto &[name, cycles] : cell->causeCycles)
            if (std::find(order.begin(), order.end(), name) ==
                order.end())
                order.push_back(name);

    for (const std::string &name : order) {
        const auto ia = a.causeCycles.find(name);
        const auto ib = b.causeCycles.find(name);
        if (ia == a.causeCycles.end() && ib == b.causeCycles.end())
            continue;
        CauseDelta d;
        d.cause = name;
        d.a = ia == a.causeCycles.end() ? 0 : ia->second;
        d.b = ib == b.causeCycles.end() ? 0 : ib->second;
        out.causes.push_back(std::move(d));
    }
}

void
diffBlocks(const CellStream &a, const CellStream &b, CellDiff &out)
{
    std::set<std::uint32_t> ids;
    for (const auto &[id, block] : a.blocks)
        ids.insert(id);
    for (const auto &[id, block] : b.blocks)
        ids.insert(id);

    for (const std::uint32_t id : ids) {
        const auto ia = a.blocks.find(id);
        const auto ib = b.blocks.find(id);
        BlockDelta d;
        d.block = id;
        if (ia != a.blocks.end()) {
            d.entryPc = ia->second.entryPc;
            d.a = ia->second.pathCycles;
        }
        if (ib != b.blocks.end()) {
            if (d.entryPc < 0)
                d.entryPc = ib->second.entryPc;
            d.b = ib->second.pathCycles;
        }
        const bool causesA = ia == a.blocks.end() || ia->second.hasCauses;
        const bool causesB = ib == b.blocks.end() || ib->second.hasCauses;
        if (causesA && causesB &&
            (ia != a.blocks.end() || ib != b.blocks.end())) {
            d.hasCauses = true;
            for (std::size_t c = 0; c < profile::kCritCauseCount; ++c) {
                d.causesA[c] =
                    ia == a.blocks.end() ? 0 : ia->second.causes[c];
                d.causesB[c] =
                    ib == b.blocks.end() ? 0 : ib->second.causes[c];
            }
        }
        if (d.a || d.b)
            out.blocks.push_back(d);
    }

    // "Blocks that paid" ranking: largest absolute path-cycle swing
    // first, ties broken by block id for determinism.
    std::sort(out.blocks.begin(), out.blocks.end(),
              [](const BlockDelta &x, const BlockDelta &y) {
                  const std::int64_t ax = std::llabs(x.delta());
                  const std::int64_t ay = std::llabs(y.delta());
                  if (ax != ay)
                      return ax > ay;
                  return x.block < y.block;
              });
}

std::vector<std::uint64_t>
windowRetired(const CellStream &cell)
{
    std::vector<std::uint64_t> counts;
    counts.reserve(cell.windows.size());
    for (const CellWindow &w : cell.windows)
        counts.push_back(w.retiredNodes);
    return counts;
}

void
diffDivergence(const CellStream &a, const CellStream &b, CellDiff &out)
{
    // Best evidence first: full retired logs give the exact node.
    if (!a.retired.empty() && !b.retired.empty()) {
        const WindowedLog wa =
            buildWindowedLog(a.retired, windowRetired(a));
        const WindowedLog wb =
            buildWindowedLog(b.retired, windowRetired(b));
        out.divergence = pinpointDivergence(wa, wb);
        return;
    }

    // Next: per-window fingerprints narrow to the first window.
    const std::size_t common =
        std::min(a.windows.size(), b.windows.size());
    bool hashed = common > 0;
    for (std::size_t i = 0; i < common; ++i)
        if (!a.windows[i].hasHash || !b.windows[i].hasHash)
            hashed = false;
    if (hashed) {
        std::size_t lo = 0, hi = common;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (a.windows[mid].schedHash != b.windows[mid].schedHash)
                hi = mid;
            else
                lo = mid + 1;
        }
        if (lo < common) {
            out.divergence.level = Divergence::Level::Window;
            out.divergence.firstWindow = a.windows[lo].index;
            out.divergence.hashA = a.windows[lo].schedHash;
            out.divergence.hashB = b.windows[lo].schedHash;
        } else if (a.windows.size() != b.windows.size()) {
            out.divergence.level = Divergence::Level::Window;
            out.divergence.firstWindow = common;
            out.divergence.truncated = true;
        } else {
            out.divergence.level = Divergence::Level::Identical;
        }
        return;
    }

    // Last resort: whole-run fingerprints say same/different only.
    if (a.hasSchedHash && b.hasSchedHash) {
        out.divergence.level = a.schedHash == b.schedHash
                                   ? Divergence::Level::Identical
                                   : Divergence::Level::Run;
        out.divergence.hashA = a.schedHash;
        out.divergence.hashB = b.schedHash;
    }
}

} // namespace

CellDiff
diffCells(const CellStream &a, const CellStream &b)
{
    CellDiff out;
    out.workload = a.workload;
    out.config = a.config;
    out.cyclesA = a.cycles;
    out.cyclesB = b.cycles;
    out.retiredA = a.retiredNodes;
    out.retiredB = b.retiredNodes;
    out.ipcA = a.ipc();
    out.ipcB = b.ipc();
    out.critPathA = a.critPathCycles;
    out.critPathB = b.critPathCycles;
    diffWindows(a, b, out);
    diffCauses(a, b, out);
    diffBlocks(a, b, out);
    diffDivergence(a, b, out);
    return out;
}

DiffResult
diffStreams(const Stream &a, const Stream &b)
{
    DiffResult out;
    for (const CellStream &cell : a.cells) {
        const CellStream *other = b.find(cell.key());
        if (!other) {
            out.onlyA.push_back(cell.key());
            continue;
        }
        out.cells.push_back(diffCells(cell, *other));
    }
    for (const CellStream &cell : b.cells)
        if (!a.find(cell.key()))
            out.onlyB.push_back(cell.key());
    return out;
}

} // namespace fgp::diff
