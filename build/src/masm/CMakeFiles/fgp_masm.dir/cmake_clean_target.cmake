file(REMOVE_RECURSE
  "libfgp_masm.a"
)
