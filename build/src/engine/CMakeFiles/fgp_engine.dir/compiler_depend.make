# Empty compiler generated dependencies file for fgp_engine.
# This may be replaced when dependencies are built.
