#!/bin/sh
# Hardened CI configuration: Debug build (post-pass verifier checks on by
# default) with AddressSanitizer + UBSan and warnings-as-errors, then the
# full test suite. Usage:
#
#   tools/ci.sh [build-dir]
#
# The build directory defaults to build-san, kept apart from the regular
# `build/` tree so the two configurations never share object files.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-san}"
[ "$#" -gt 0 ] && shift
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DFGP_SANITIZE=address,undefined \
    -DFGP_WERROR=ON
cmake --build "$BUILD" -j "$JOBS"

# Make UBSan findings fatal so ctest reports them as failures.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" "$@"
