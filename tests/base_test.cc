/** Unit tests for src/base utilities. */

#include <gtest/gtest.h>

#include <sstream>

#include "base/histogram.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/table.hh"

namespace fgp {
namespace {

TEST(Logging, FatalThrowsCatchableError)
{
    EXPECT_THROW(fgp_fatal("bad config value ", 42), FatalError);
    try {
        fgp_fatal("context ", "message");
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("context message"),
                  std::string::npos);
    }
}

TEST(StrUtil, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StrUtil, SplitSingleField)
{
    const auto parts = split("hello", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "hello");
}

TEST(StrUtil, TrimStripsWhitespace)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\na b\r "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("foobar", "bar"));
    EXPECT_FALSE(endsWith("ar", "bar"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_TRUE(endsWith("x", ""));
}

TEST(StrUtil, CaseConversion)
{
    EXPECT_EQ(toLower("AbC7"), "abc7");
    EXPECT_EQ(toUpper("AbC7"), "ABC7");
}

TEST(StrUtil, ParseIntDecimal)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-17"), -17);
    EXPECT_EQ(parseInt("+8"), 8);
    EXPECT_EQ(parseInt(" 12 "), 12);
    EXPECT_EQ(parseInt("0"), 0);
}

TEST(StrUtil, ParseIntHexAndBinary)
{
    EXPECT_EQ(parseInt("0x10"), 16);
    EXPECT_EQ(parseInt("0XfF"), 255);
    EXPECT_EQ(parseInt("0b101"), 5);
    EXPECT_EQ(parseInt("-0x10"), -16);
}

TEST(StrUtil, ParseIntRejectsGarbage)
{
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt("x").has_value());
    EXPECT_FALSE(parseInt("12x").has_value());
    EXPECT_FALSE(parseInt("0x").has_value());
    EXPECT_FALSE(parseInt("-").has_value());
    EXPECT_FALSE(parseInt("0b2").has_value());
    EXPECT_FALSE(parseInt("99999999999999999999999").has_value());
}

TEST(StrUtil, ParseIntBoundaries)
{
    EXPECT_EQ(parseInt("9223372036854775807"), 9223372036854775807LL);
    EXPECT_FALSE(parseInt("9223372036854775808").has_value());
    EXPECT_EQ(parseInt("-9223372036854775808"),
              std::numeric_limits<std::int64_t>::min());
}

TEST(StrUtil, Format)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(format("%05.2f", 3.14159), "03.14");
}

TEST(StrUtil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Rng, DeterministicStreams)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 6);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(1, 4);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 4); // buckets 0-3, 4-7, 8-11, 12-15, overflow >= 16
    h.add(0);
    h.add(3);
    h.add(4);
    h.add(15);
    h.add(16);
    h.add(100);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
}

TEST(Histogram, WeightedSamplesAndMean)
{
    Histogram h(1, 10);
    h.add(2, 3);
    h.add(4, 1);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (2 * 3 + 4) / 4.0);
    EXPECT_DOUBLE_EQ(h.bucketFraction(2), 0.75);
}

TEST(Histogram, MergeAndClear)
{
    Histogram a(2, 4);
    Histogram b(2, 4);
    a.add(1);
    b.add(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.bucketCount(0), 1u);
    EXPECT_EQ(a.bucketCount(2), 1u);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Histogram, Labels)
{
    Histogram h(4, 2);
    EXPECT_EQ(h.bucketLabel(0), "0-3");
    EXPECT_EQ(h.bucketLabel(1), "4-7");
    Histogram unit(1, 2);
    EXPECT_EQ(unit.bucketLabel(1), "1");
}

TEST(Histogram, OriginAndUnderflow)
{
    Histogram h(4, 2, 8); // buckets 8-11, 12-15; underflow < 8
    h.add(7);
    h.add(8);
    h.add(12);
    h.add(16);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.underflowCount(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.bucketLabel(0), "8-11");
    EXPECT_EQ(h.min(), 7u); // under/overflow still feed min/max/mean
    EXPECT_EQ(h.max(), 16u);

    Histogram other(4, 2, 8);
    other.add(0, 2);
    h.merge(other);
    EXPECT_EQ(h.underflowCount(), 3u);
    h.clear();
    EXPECT_EQ(h.underflowCount(), 0u);
    EXPECT_EQ(h.origin(), 8u);
}

TEST(Histogram, ToJson)
{
    Histogram h(4, 2, 8);
    h.add(7);
    h.add(9, 2);
    h.add(100);
    EXPECT_EQ(h.toJson(),
              "{\"bucket_width\":4,\"origin\":8,\"count\":4,\"sum\":125,"
              "\"min\":7,\"max\":100,\"underflow\":1,\"overflow\":1,"
              "\"buckets\":[2,0]}");
    Histogram empty(1, 2);
    EXPECT_EQ(empty.toJson(),
              "{\"bucket_width\":1,\"origin\":0,\"count\":0,\"sum\":0,"
              "\"min\":0,\"max\":0,\"underflow\":0,\"overflow\":0,"
              "\"buckets\":[0,0]}");
}

TEST(Stats, SetAddGet)
{
    StatGroup g;
    g.set("a", 2);
    g.add("a", 3);
    g.add("fresh", 1);
    g.setReal("r", 0.5);
    EXPECT_EQ(g.get("a"), 5u);
    EXPECT_EQ(g.get("fresh"), 1u);
    EXPECT_EQ(g.get("missing"), 0u);
    EXPECT_DOUBLE_EQ(g.getReal("r"), 0.5);
    EXPECT_DOUBLE_EQ(g.getReal("a"), 5.0);
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("nope"));
}

TEST(Stats, MergeSumsInts)
{
    StatGroup a;
    StatGroup b;
    a.set("x", 1);
    b.set("x", 2);
    b.set("y", 3);
    a.mergeFrom(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(Table, AlignedOutputAndCsv)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addNumericRow("beta", {2.5}, 1);
    EXPECT_EQ(t.numRows(), 2u);

    std::ostringstream text;
    t.print(text);
    EXPECT_NE(text.str().find("alpha"), std::string::npos);
    EXPECT_NE(text.str().find("2.5"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1\nbeta,2.5\n");
}

TEST(Table, RowArityChecked)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace fgp
