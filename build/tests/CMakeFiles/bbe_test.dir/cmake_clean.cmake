file(REMOVE_RECURSE
  "CMakeFiles/bbe_test.dir/bbe_test.cc.o"
  "CMakeFiles/bbe_test.dir/bbe_test.cc.o.d"
  "bbe_test"
  "bbe_test.pdb"
  "bbe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
