# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/tld_test[1]_include.cmake")
include("/root/repo/build/tests/bbe_test[1]_include.cmake")
include("/root/repo/build/tests/branch_memsys_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
add_test(cli_pipeline "/root/repo/tests/cli_test.sh" "/root/repo/build/tools/fgpsim")
set_tests_properties(cli_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
