/**
 * @file
 * Differential folded-stack export. Each line is a semicolon-joined
 * stack followed by the A and B critical-path cycle counts:
 *
 *   <workload>;<config>;block_<id>@pc<pc>;<cause> <count_a> <count_b>
 *
 * which is exactly the two-column folded format flamegraph difference
 * tooling (difffolded.pl / inferno-diff-folded) consumes. The deepest
 * frame is the block x cause joint cell when both streams carried
 * critedge rows; older streams fall back to block-level and then to
 * cause-level stacks, so the export never comes back empty for a
 * stream that had any critical-path attribution at all.
 */

#ifndef FGP_DIFF_FLAME_HH
#define FGP_DIFF_FLAME_HH

#include <ostream>

#include "diff/diff.hh"

namespace fgp::diff {

/** Write the folded-stack diff for one cell; returns lines written. */
std::size_t writeFoldedDiff(std::ostream &os, const CellDiff &cell);

/** writeFoldedDiff() over every cell of a diff result. */
std::size_t writeFoldedDiff(std::ostream &os, const DiffResult &result);

} // namespace fgp::diff

#endif // FGP_DIFF_FLAME_HH
