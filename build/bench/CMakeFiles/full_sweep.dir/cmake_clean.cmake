file(REMOVE_RECURSE
  "CMakeFiles/full_sweep.dir/full_sweep.cc.o"
  "CMakeFiles/full_sweep.dir/full_sweep.cc.o.d"
  "full_sweep"
  "full_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
