# Empty dependencies file for fig3_issue_sweep.
# This may be replaced when dependencies are built.
