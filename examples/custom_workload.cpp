/**
 * @file
 * Custom workload walkthrough: write your own micro-assembly program,
 * profile it, build enlarged basic blocks from the profile and watch the
 * three techniques of the paper interact on it.
 *
 *   $ ./build/examples/custom_workload
 */

#include <iostream>

#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "ir/printer.hh"
#include "masm/assembler.hh"
#include "tld/translate.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"

using namespace fgp;

// A string checksum with a biased inner branch: most bytes are lower
// case, so enlargement fuses the hot path straight through the loop.
static const char *const kProgram = R"(
        .data
text:   .asciiz "the quick brown Fox jumps over the lazy Dog again and again until the Benchmark is long enough to matter"
        .text
main:   la   r20, text
        li   r21, 0          # checksum
loop:   lbu  r8, 0(r20)
        beqz r8, done
        li   r9, 'a'
        blt  r8, r9, upper   # cold path: capitals and spaces
        slli r10, r21, 1
        add  r21, r10, r8
        j    next
upper:  add  r21, r21, r8
next:   addi r20, r20, 1
        j    loop
done:   andi a0, r21, 0xff
        li   v0, 0
        syscall
)";

int
main()
{
    const Program prog = assemble(kProgram, "custom");

    // Profile the branch arcs functionally.
    Profile profile;
    SimOS profile_os;
    InterpOptions popts;
    popts.profile = &profile;
    const RunResult ref = interpret(prog, profile_os, popts);
    std::cout << "functional exit code " << ref.exitCode << ", "
              << ref.dynamicNodes << " nodes, "
              << profile.totalBranches << " conditional branches\n\n";

    // Enlarge along the hot arcs.
    const CodeImage single = buildCfg(prog);
    EnlargeStats stats;
    EnlargeOptions eopts;
    eopts.minArcCount = 16;
    CodeImage enlarged = enlarge(single, profile, eopts, &stats);
    std::cout << "enlargement: " << stats.chains << " chains ("
              << stats.companions << " companions), mean length "
              << stats.meanChainLen << "\n";

    // Show the first enlarged block with its fault nodes.
    for (const ImageBlock &block : enlarged.blocks) {
        if (!block.enlarged || block.companion)
            continue;
        std::cout << "\nprimary enlarged block (chain of " << block.chainLen
                  << " original blocks):\n";
        for (const Node &node : block.nodes)
            std::cout << "    " << formatNode(node) << "\n";
        break;
    }

    // Validate the transformation with the atomic reference executor.
    SimOS atomic_os;
    const AtomicRunResult atomic = runAtomic(enlarged, atomic_os);
    std::cout << "\natomic run: exit " << atomic.exitCode << ", "
              << atomic.faults << " faults fired, "
              << atomic.discardedNodes << " nodes discarded\n";

    // And simulate single vs. enlarged on a wide dynamic machine.
    for (BranchMode mode : {BranchMode::Single, BranchMode::Enlarged}) {
        MachineConfig config{Discipline::Dyn4, issueModel(8),
                             memoryConfig('A'), mode};
        CodeImage image =
            mode == BranchMode::Single ? single : enlarged;
        translate(image, config);
        SimOS os;
        EngineOptions opts;
        opts.config = config;
        const EngineResult r = simulate(image, os, opts);
        std::cout << branchModeName(mode) << " blocks: " << r.cycles
                  << " cycles, "
                  << static_cast<double>(ref.dynamicNodes) /
                         static_cast<double>(r.cycles)
                  << " nodes/cycle\n";
    }
    return 0;
}
