# Empty dependencies file for fgp_workloads.
# This may be replaced when dependencies are built.
