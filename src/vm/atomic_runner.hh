/**
 * @file
 * AtomicRunner — block-atomic reference executor for translated code.
 *
 * Executes a CodeImage the way the speculative hardware commits it: one
 * (possibly enlarged) basic block at a time, buffering stores and
 * checkpointing registers so that a firing fault node discards the whole
 * block and resumes at its fault-to companion. It is the golden model for
 * the translating loader and the enlargement pass (timing-free), and it
 * produces the committed-block trace used to drive the engine's perfect
 * branch prediction mode.
 */

#ifndef FGP_VM_ATOMIC_RUNNER_HH
#define FGP_VM_ATOMIC_RUNNER_HH

#include <cstdint>
#include <vector>

#include "ir/image.hh"
#include "vm/memory.hh"
#include "vm/simos.hh"

namespace fgp {

/** Result of an atomic run. */
struct AtomicRunResult
{
    int exitCode = 0;
    bool exited = false;

    std::uint64_t retiredNodes = 0;   ///< nodes in committed blocks
    std::uint64_t executedNodes = 0;  ///< includes discarded block attempts
    std::uint64_t discardedNodes = 0; ///< executed in blocks that faulted
    std::uint64_t committedBlocks = 0;
    std::uint64_t faults = 0;         ///< fault nodes that fired

    /** Committed block ids in order (filled when requested). */
    std::vector<std::int32_t> blockTrace;
};

/** Options for an atomic run. */
struct AtomicRunOptions
{
    bool recordTrace = false;
    std::uint64_t maxNodes = 4'000'000'000ULL;
};

/** Execute @p image to completion against @p os and @p mem. */
AtomicRunResult runAtomic(const CodeImage &image, SimOS &os,
                          SparseMemory &mem,
                          const AtomicRunOptions &opts = {});

/** Convenience overload with fresh memory. */
AtomicRunResult runAtomic(const CodeImage &image, SimOS &os,
                          const AtomicRunOptions &opts = {});

} // namespace fgp

#endif // FGP_VM_ATOMIC_RUNNER_HH
