/**
 * @file
 * Basic block enlargement (§2.3, §3.1).
 *
 * Consumes the branch-arc profile of a first run and fuses hot chains of
 * basic blocks into enlarged atomic blocks:
 *
 *  - arcs are considered in decreasing dynamic weight; a chain grows along
 *    the dominant arc while its weight stays above an absolute threshold
 *    and its share of the branch stays above a ratio threshold;
 *  - only two-way conditional branches to explicit destinations are
 *    optimized (unconditional jumps and fall-throughs fuse for free;
 *    JAL/JR and system-call blocks stop a chain);
 *  - embedded conditional branches become *fault* nodes whose explicit
 *    fault-to target is a *companion* enlarged block that re-executes the
 *    shared prefix and exits along the cold arc (Figure 1's AB/AC pair;
 *    atomic commit makes the re-execution safe, and mutual fault targets
 *    avoid livelock);
 *  - loops unroll naturally when the dominant arc re-enters the chain; at
 *    most 16 instances of any original block are created (§3.1);
 *  - all control transfers to an enlarged entry are redirected to the
 *    primary instance, matching the paper's trap-only prediction
 *    ("branches to enlarged basic blocks will always execute the initial
 *    enlarged basic block first").
 */

#ifndef FGP_BBE_ENLARGE_HH
#define FGP_BBE_ENLARGE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bbe/plan.hh"
#include "ir/image.hh"
#include "vm/profile.hh"

namespace fgp {

/**
 * Plan-audit hook: may reorder (or prune) the planned chains before
 * planEnlargement returns them. applyEnlargement consumes chains in plan
 * order and an earlier chain consumes the entry pcs of any later chain it
 * overlaps, so ordering decides which chains win conflicts. The analyzer
 * provides two hooks: analyze::heightRankingHook ranks chains by
 * predicted dependence-height reduction, and analyze::oracleRankingHook
 * ranks by exact (oracle-measured) makespan reduction under a concrete
 * issue model — comparing the two quantifies how often the height
 * heuristic mis-orders chains. The default pipeline installs none, so
 * built schedules are unchanged unless a caller opts in.
 */
using PlanAuditHook =
    std::function<void(const CodeImage &single, EnlargePlan &plan)>;

/** How a chain continues past one of its member blocks. */
enum class JunctionKind : std::uint8_t {
    CondHotTaken,    ///< conditional branch, dominant arc is the target
    CondHotFall,     ///< conditional branch, dominant arc falls through
    Uncond,          ///< unconditional J
    FallThrough,     ///< block without a terminal control node
    End,             ///< last member: terminal kept verbatim
};

/** One resolved chain member: source block plus how the chain leaves it. */
struct ChainLink
{
    std::int32_t blockId;
    JunctionKind kind = JunctionKind::End;
};

using Chain = std::vector<ChainLink>;

/** Count conditional junctions in positions [from, chain.size()-2]. */
int condJunctionsFrom(const Chain &chain, std::size_t from);

/**
 * Replay one planned chain of entry pcs against @p single, recovering
 * block ids and junction kinds. Throws FatalError when the plan does not
 * follow real control-flow arcs (the same validation applyEnlargement
 * performs); also used by the soundness checker to audit built images.
 */
Chain resolveChain(const CodeImage &single, const EnlargeChain &planned);

/** Enlargement thresholds and caps. */
struct EnlargeOptions
{
    /** Minimum dynamic executions of a branch before it may be embedded. */
    std::uint64_t minArcCount = 32;

    /** Minimum share of the dominant arc (the paper's ratio threshold). */
    double minArcRatio = 0.70;

    /** Maximum original blocks fused into one enlarged block. */
    int maxChainLen = 8;

    /** Maximum instances (copies) of one original block (paper: 16). */
    int maxInstances = 16;

    /** Optional chain-ranking hook applied to the finished plan. */
    PlanAuditHook auditHook;
};

/** Summary statistics of one enlargement run. */
struct EnlargeStats
{
    std::uint64_t chains = 0;         ///< primary enlarged blocks built
    std::uint64_t companions = 0;     ///< companion blocks built
    std::uint64_t blocksFused = 0;    ///< original blocks consumed (w/ copies)
    std::uint64_t faultNodes = 0;     ///< embedded assert nodes created
    double meanChainLen = 0.0;
};

/**
 * Derive the enlargement plan (the paper's enlargement file) from the
 * branch-arc profile: chains of original block entry pcs to fuse.
 */
EnlargePlan planEnlargement(const CodeImage &single, const Profile &profile,
                            const EnlargeOptions &opts = {});

/**
 * Build the enlarged image of @p single from an explicit plan (e.g. one
 * parsed from an enlargement file). Validates that each chain follows
 * real control-flow arcs; throws FatalError on corrupt plans. The source
 * image and its program must outlive the result.
 */
CodeImage applyEnlargement(const CodeImage &single, const EnlargePlan &plan,
                           EnlargeStats *stats = nullptr);

/** planEnlargement + applyEnlargement in one step. */
CodeImage enlarge(const CodeImage &single, const Profile &profile,
                  const EnlargeOptions &opts = {},
                  EnlargeStats *stats = nullptr);

} // namespace fgp

#endif // FGP_BBE_ENLARGE_HH
