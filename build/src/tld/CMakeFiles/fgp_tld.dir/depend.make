# Empty dependencies file for fgp_tld.
# This may be replaced when dependencies are built.
