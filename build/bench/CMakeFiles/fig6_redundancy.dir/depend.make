# Empty dependencies file for fig6_redundancy.
# This may be replaced when dependencies are built.
