/**
 * @file
 * Allocation-free container primitives for the cycle engine's hot paths.
 *
 * Every simulated cycle pushes and pops queue entries, schedules
 * completion events and probes the store-forwarding table; at millions
 * of cycles per run the standard node-based containers (std::deque,
 * std::map, std::unordered_map) spend most of their time in the
 * allocator and chasing cold pointers. These replacements share three
 * properties:
 *
 *  - storage is a power-of-two flat array that grows geometrically and
 *    is never freed between runs (clearRetain()), so a warmed workspace
 *    performs zero steady-state allocations;
 *  - elements are plain structs laid out contiguously, so the per-cycle
 *    working set stays inside a few cache lines;
 *  - growth preserves logical order/identity, so holding an index or a
 *    (pos, seq) reference across a grow is safe.
 *
 * bench/micro_components.cc benchmarks each primitive against its
 * std:: counterpart so layout regressions are attributable.
 */

#ifndef FGP_ENGINE_CONTAINERS_HH
#define FGP_ENGINE_CONTAINERS_HH

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace fgp {

/** Index sentinel shared by the chain/freelist structures. */
inline constexpr std::uint32_t kNilIndex = 0xffffffffu;

/**
 * Power-of-two ring buffer: a deque without per-chunk allocation.
 * Supports the engine's access mix — push_back, pop_front (retire),
 * pop_back (squash), and random logical indexing (binary search over
 * sorted content).
 */
template <typename T>
class RingBuffer
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    void
    push_back(const T &item)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & mask_] = item;
        ++count_;
    }

    T &front() { return buf_[head_ & mask_]; }
    const T &front() const { return buf_[head_ & mask_]; }
    T &back() { return buf_[(head_ + count_ - 1) & mask_]; }
    const T &back() const { return buf_[(head_ + count_ - 1) & mask_]; }

    /** Logical indexing: [0] is the front. */
    T &operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    void
    pop_front()
    {
        fgp_assert(count_, "pop_front on empty ring");
        ++head_;
        --count_;
    }

    void
    pop_back()
    {
        fgp_assert(count_, "pop_back on empty ring");
        --count_;
    }

    /** Insert before logical index @p i, shifting the back side (the
     *  engine's sorted rings insert at or near the back). */
    void
    insert(std::size_t i, const T &item)
    {
        push_back(item);
        for (std::size_t j = count_ - 1; j > i; --j)
            (*this)[j] = (*this)[j - 1];
        (*this)[i] = item;
    }

    /** Erase logical index @p i, shifting whichever side is shorter
     *  (front erases — the retirement pattern — cost O(1)). */
    void
    erase(std::size_t i)
    {
        fgp_assert(i < count_, "ring erase out of range");
        if (i <= count_ / 2) {
            for (std::size_t j = i; j > 0; --j)
                (*this)[j] = (*this)[j - 1];
            pop_front();
        } else {
            for (std::size_t j = i; j + 1 < count_; ++j)
                (*this)[j] = (*this)[j + 1];
            pop_back();
        }
    }

    /** Drop contents; keep the array (zero-alloc reuse). */
    void
    clearRetain()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t new_cap = buf_.empty() ? 64 : buf_.size() * 2;
        std::vector<T> next(new_cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        mask_ = new_cap - 1;
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * Flat binary min-heap over a reusable vector. Pop order for a strict
 * total order is implementation-independent (always the minimum), which
 * is what lets this replace std::priority_queue without perturbing
 * schedules: the engine's comparators order by unique sequence numbers,
 * and the one cycle-keyed heap (completion events) is drained per cycle
 * and re-sorted by its caller.
 */
template <typename T, typename Less>
class MinHeap
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    const T &top() const { return heap_.front(); }

    void
    push(const T &item)
    {
        heap_.push_back(item);
        std::size_t i = heap_.size() - 1;
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!less_(heap_[i], heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void
    pop()
    {
        fgp_assert(!heap_.empty(), "pop on empty heap");
        heap_.front() = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        std::size_t i = 0;
        for (;;) {
            const std::size_t l = 2 * i + 1;
            const std::size_t r = l + 1;
            std::size_t best = i;
            if (l < n && less_(heap_[l], heap_[best]))
                best = l;
            if (r < n && less_(heap_[r], heap_[best]))
                best = r;
            if (best == i)
                break;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
    }

    void clearRetain() { heap_.clear(); }

  private:
    std::vector<T> heap_;
    Less less_{};
};

/**
 * Pooled singly-linked chains with an intrusive freelist. The engine
 * threads consumer-wait and parked-load chains through node slots with
 * these; a chain replaces one heap-allocated std::vector per waited-on
 * producer. Append order is preserved (head/tail), matching the wake
 * order the old per-producer vectors produced.
 */
template <typename T>
class ChainPool
{
  public:
    std::uint32_t
    alloc(const T &item)
    {
        if (free_ != kNilIndex) {
            const std::uint32_t idx = free_;
            free_ = slots_[idx].next;
            slots_[idx].item = item;
            slots_[idx].next = kNilIndex;
            return idx;
        }
        slots_.push_back(Slot{item, kNilIndex});
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    void
    release(std::uint32_t idx)
    {
        slots_[idx].next = free_;
        free_ = idx;
    }

    /** Slots ever allocated (arena high-water mark, freelist included). */
    std::size_t size() const { return slots_.size(); }

    T &at(std::uint32_t idx) { return slots_[idx].item; }
    const T &at(std::uint32_t idx) const { return slots_[idx].item; }
    std::uint32_t next(std::uint32_t idx) const { return slots_[idx].next; }
    void setNext(std::uint32_t idx, std::uint32_t n) { slots_[idx].next = n; }

    void
    clearRetain()
    {
        slots_.clear();
        free_ = kNilIndex;
    }

  private:
    struct Slot
    {
        T item;
        std::uint32_t next;
    };
    std::vector<Slot> slots_;
    std::uint32_t free_ = kNilIndex;
};

/**
 * Open-addressing hash map from 32-bit keys to small values: linear
 * probing, power-of-two capacity, backward-shift deletion (no
 * tombstones, so load factor stays honest under the store index's
 * add/erase churn). Values must be trivially copyable.
 */
template <typename V>
class FlatHashMap32
{
  public:
    FlatHashMap32() { rehash(64); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Value slot for @p key, default-constructed when absent. */
    V &
    operator[](std::uint32_t key)
    {
        if ((size_ + 1) * 10 >= capacity() * 7)
            rehash(capacity() * 2);
        std::size_t i = slotFor(key);
        while (used_[i]) {
            if (keys_[i] == key) {
                fresh_ = false;
                return vals_[i];
            }
            i = (i + 1) & mask_;
        }
        used_[i] = 1;
        keys_[i] = key;
        vals_[i] = V{};
        ++size_;
        fresh_ = true;
        return vals_[i];
    }

    /** Like operator[], but a fresh slot starts as @p init. */
    V &
    getOrInsert(std::uint32_t key, const V &init)
    {
        V &slot = (*this)[key];
        if (fresh_)
            slot = init;
        return slot;
    }

    V *
    find(std::uint32_t key)
    {
        std::size_t i = slotFor(key);
        while (used_[i]) {
            if (keys_[i] == key)
                return &vals_[i];
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const V *
    find(std::uint32_t key) const
    {
        return const_cast<FlatHashMap32 *>(this)->find(key);
    }

    void
    erase(std::uint32_t key)
    {
        std::size_t i = slotFor(key);
        while (used_[i]) {
            if (keys_[i] == key) {
                eraseSlot(i);
                return;
            }
            i = (i + 1) & mask_;
        }
    }

    void
    clearRetain()
    {
        std::memset(used_.data(), 0, used_.size());
        size_ = 0;
    }

  private:
    std::size_t capacity() const { return mask_ + 1; }

    std::size_t
    slotFor(std::uint32_t key) const
    {
        // Fibonacci multiplicative mix; byte addresses are sequential.
        return (key * 0x9e3779b1u) >> shift_ & mask_;
    }

    void
    eraseSlot(std::size_t i)
    {
        // Backward shift: pull every displaced follower one slot closer
        // to its home until a hole or a home-positioned entry stops the
        // cluster.
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (!used_[j])
                break;
            const std::size_t home = slotFor(keys_[j]);
            if (((j - home) & mask_) >= ((j - i) & mask_)) {
                keys_[i] = keys_[j];
                vals_[i] = vals_[j];
                i = j;
            }
        }
        used_[i] = 0;
        --size_;
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<std::uint8_t> old_used = std::move(used_);
        std::vector<std::uint32_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        used_.assign(new_cap, 0);
        keys_.resize(new_cap);
        vals_.resize(new_cap);
        mask_ = new_cap - 1;
        shift_ = 0; // keep the high mix bits: shift so the mask sees them
        while ((new_cap << (shift_ + 1)) <= (std::size_t{1} << 32))
            ++shift_;
        size_ = 0;
        for (std::size_t s = 0; s < old_used.size(); ++s) {
            if (!old_used[s])
                continue;
            std::size_t i = slotFor(old_keys[s]);
            while (used_[i])
                i = (i + 1) & mask_;
            used_[i] = 1;
            keys_[i] = old_keys[s];
            vals_[i] = old_vals[s];
            ++size_;
        }
    }

    std::vector<std::uint8_t> used_;
    std::vector<std::uint32_t> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
    unsigned shift_ = 0;
    std::size_t size_ = 0;
    bool fresh_ = false; ///< did the last operator[] create its slot?
};

} // namespace fgp

#endif // FGP_ENGINE_CONTAINERS_HH
