#include "profile/critpath.hh"

#include <algorithm>

#include "base/logging.hh"

namespace fgp {
namespace profile {

const char *
critCauseName(CritCause cause)
{
    switch (cause) {
      case CritCause::Fetch:
        return "fetch";
      case CritCause::Branch:
        return "branch";
      case CritCause::Operand:
        return "operand";
      case CritCause::Memory:
        return "memory";
      case CritCause::Forward:
        return "forward";
      case CritCause::FuBusy:
        return "fu_busy";
      case CritCause::Execute:
        return "execute";
      case CritCause::Retire:
        return "retire";
    }
    return "?";
}

namespace {

/** Binary search the seq-ascending log for @p seq; npos when absent
 *  (a producer that never retired — squashed wrong-path work). */
std::size_t
findSeq(const std::vector<RetiredNode> &log, std::uint64_t seq)
{
    const auto it = std::lower_bound(
        log.begin(), log.end(), seq,
        [](const RetiredNode &n, std::uint64_t s) { return n.seq < s; });
    if (it != log.end() && it->seq == seq)
        return static_cast<std::size_t>(it - log.begin());
    return static_cast<std::size_t>(-1);
}

CritCause
waitCause(EdgeKind edge)
{
    switch (edge) {
      case EdgeKind::Data:
        return CritCause::Operand;
      case EdgeKind::Memory:
        return CritCause::Memory;
      case EdgeKind::Forward:
        return CritCause::Forward;
      case EdgeKind::Branch:
        return CritCause::Branch;
      case EdgeKind::Fetch:
      case EdgeKind::None:
        break;
    }
    return CritCause::Fetch;
}

} // namespace

CritPath
extractCriticalPath(const std::vector<RetiredNode> &log,
                    std::uint64_t total_cycles, std::size_t num_blocks)
{
    CritPath cp;
    cp.blockCycles.assign(num_blocks, 0);
    cp.blockCauses.assign(num_blocks, {});
    if (log.empty() || total_cycles == 0)
        return cp;

    // Backward walk with a monotone time cursor: `hi` is the earliest
    // cycle already attributed. Each visited node claims the disjoint
    // segments of its pipeline span that lie below the cursor, plus the
    // gap down to its enabling producer's completion (a branch edge's
    // gap is the redirect penalty, a fetch edge's gap is in-order fetch
    // serialization). The cursor never increases, so the attributed
    // total — the path length — cannot exceed total_cycles; a node
    // counts toward pathNodes only when it claimed at least one cycle,
    // so pathNodes <= pathCycles and the path-implied IPC is <= 1.
    std::uint64_t hi = total_cycles;
    std::size_t idx = log.size() - 1;

    while (true) {
        const RetiredNode &n = log[idx];
        std::uint64_t contributed = 0;
        std::array<std::uint64_t, kCritCauseCount> node_causes{};
        const auto take = [&](std::uint64_t lo, std::uint64_t seg_hi,
                              CritCause cause) {
            const std::uint64_t e = std::min(hi, seg_hi);
            if (e > lo) {
                const std::size_t c = static_cast<std::size_t>(cause);
                cp.causeCycles[c] += e - lo;
                node_causes[c] += e - lo;
                contributed += e - lo;
                hi = lo;
            }
        };

        // Complete-to-commit slack above this node's span (only the last
        // retired node can leave one — every other visit enters with the
        // cursor already at or below its completion).
        take(n.completeCycle, hi, CritCause::Retire);
        take(n.schedCycle, n.completeCycle, CritCause::Execute);
        take(n.readyCycle, n.schedCycle, CritCause::FuBusy);
        take(n.issueCycle, n.readyCycle, waitCause(n.edge));

        const bool last = idx == 0 || hi == 0;
        std::size_t next = idx ? idx - 1 : 0;
        if (!last) {
            // Follow the enabling edge when it names a retired producer;
            // otherwise fall back to the previous retired node (fetch
            // order). The gap between the cursor and that producer's
            // completion belongs to the edge that made us wait.
            EdgeKind gap_edge = EdgeKind::Fetch;
            if (n.parentSeq) {
                const std::size_t p = findSeq(log, n.parentSeq);
                if (p != static_cast<std::size_t>(-1) && p < idx) {
                    next = p;
                    gap_edge = n.edge;
                }
            }
            take(log[next].completeCycle, hi, waitCause(gap_edge));
        }

        if (contributed) {
            ++cp.pathNodes;
            if (n.block < num_blocks) {
                cp.blockCycles[n.block] += contributed;
                for (std::size_t c = 0; c < kCritCauseCount; ++c)
                    cp.blockCauses[n.block][c] += node_causes[c];
            }
        }
        if (last)
            break;
        idx = next;
    }

    cp.pathCycles = total_cycles - hi;
    fgp_assert(cp.causeTotal() == cp.pathCycles,
               "critical-path attribution does not sum to the path length");
    return cp;
}

} // namespace profile
} // namespace fgp
